//! Struct-of-arrays storage for the active session population.
//!
//! The per-tick client pass used to iterate a `Vec<Client>` of ~230-byte
//! structs, pulling four cache lines per session to touch a dozen hot
//! floats. [`ClientArena`] stores those hot fields as parallel columns
//! (`Vec<f64>`/`Vec<u64>`/one-byte phases) so the tick streams over
//! contiguous memory, and keeps the cold per-session identity
//! ([`SessionRecord`] fields, patience, RNG) in side tables touched only
//! on events.
//!
//! The tick is split into three passes, each preserving the scalar
//! [`Client::step`] order *per client* (clients are independent within a
//! tick, so running the passes column-wise is bit-identical to stepping
//! each client alone):
//!
//! 1. a **download pass** over only the sessions that can be
//!    downloading (the caller's active list — idle sessions provably
//!    no-op, so they are skipped entirely), which collects
//!    chunk-boundary events into a scratch list;
//! 2. a **slow path** over the collected boundaries only (EWMA update,
//!    ziggurat noise redraw, ABR ladder walk, segment folding);
//! 3. a **phase pass** over everyone (startup/playing/rebuffering
//!    transitions, session completion) that also refreshes each
//!    survivor's next-tick demand while its state is in cache.
//!
//! Per-session minimum-RTT tracking is global rather than per client:
//! a monotone suffix-min stack over the tick RTT series answers "min
//! RTT over this session's lifetime" with one binary search at finish
//! (see `rtt_min_stack`), eliminating a load/compare per client-tick.
//!
//! `Client` remains the retained scalar reference implementation:
//! `tests/arena_oracle.rs` proves the arena's records and demand stream
//! bit-identical to stepping each `Client` individually under random
//! arrival/exit sequences.

use crate::abr::{perceptual_quality, Ladder};
use crate::client::{Client, Phase};
use crate::config::StreamConfig;
use crate::session::{LinkId, SessionRecord};
use dessim::SimRng;

/// Cold per-session state: record identity plus fields touched only on
/// phase transitions, kept out of the hot columns so the download pass
/// streams over exactly what it needs.
#[derive(Debug, Clone)]
struct Cold {
    link: LinkId,
    day: usize,
    hour: usize,
    weekend: bool,
    arrival_s: f64,
    treated: bool,
    patience_s: f64,
    play_delay_s: f64,
    rebuffer_count: u32,
    switches: u32,
    bitrate_time_product: f64,
    quality_time_product: f64,
}

/// Per-session chunk-boundary parameters, packed into one 24-byte row so
/// the boundary slow path pays a single gather instead of three spread
/// across the cold table. `permitted` is the session's permitted ladder
/// prefix (`Ladder::permitted_rungs(cap)`, the whole ladder when
/// untreated), precomputed once so every chunk's ABR walk skips the
/// per-rung ceiling comparisons.
#[derive(Debug, Clone, Copy)]
struct ChunkParams {
    sigma: f64,
    dip_prob: f64,
    permitted: usize,
}

/// The active session population in struct-of-arrays layout.
///
/// Columns are index-aligned: slot `i` of every column belongs to the
/// same session. [`ClientArena::compact`] removes finished sessions from
/// all columns order-preservingly, so callers that maintain index
/// permutations (e.g. `LinkSim`'s peak-demand order) can remap them.
#[derive(Debug, Default)]
pub struct ClientArena {
    // Hot columns: read/written by the per-tick download or phase pass.
    phase: Vec<Phase>,
    buffer_s: Vec<f64>,
    bitrate: Vec<f64>,
    chunk_noise: Vec<f64>,
    chunk_progress_s: Vec<f64>,
    access_bps: Vec<f64>,
    watched_s: Vec<f64>,
    watch_target_s: Vec<f64>,
    /// Minimum RTT carried *into* the arena at push time (∞ for fresh
    /// sessions). The per-tick minimum tracking itself is global — see
    /// `rtt_min_stack` — so this column is never written after push.
    min_rtt_s: Vec<f64>,
    bytes: Vec<f64>,
    retx_bytes: Vec<f64>,
    active_dl_s: Vec<f64>,
    /// Value of [`ClientArena::tick_count`] when the session entered
    /// (minus any ticks it had already lived). A session's ticks-alive
    /// count — needed only for the volume-independent retransmission
    /// term at finish — is `tick_count - arrival_tick`, which saves a
    /// per-client counter increment every tick.
    arrival_tick: Vec<u64>,
    /// Actual tick the session was pushed at (no pre-life adjustment):
    /// the start of its RTT observation window in `rtt_min_stack`.
    push_tick: Vec<u64>,
    seg_play_ticks: Vec<u64>,
    /// Next-tick demand (bits/s), refreshed by the phase pass; the
    /// allocator reads this column directly.
    demand: Vec<f64>,
    /// The session's constant non-zero demand value (access rate capped
    /// by the transport ceiling); demands are two-valued, so this is the
    /// only other value `demand` ever takes.
    peak_demand: Vec<f64>,
    // Event columns: touched only at chunk boundaries.
    throughput_est: Vec<f64>,
    chunk_params: Vec<ChunkParams>,
    rng: Vec<SimRng>,
    // Cold side table.
    cold: Vec<Cold>,
    /// Tombstones: finished sessions stay in place (demand zeroed, no
    /// allocation-order entry, skipped by the phase pass) until enough
    /// accumulate to amortize a whole-arena compaction — see
    /// [`ClientArena::needs_compaction`].
    dead: Vec<bool>,
    dead_count: usize,
    /// Scratch: chunk-boundary events collected by the download pass,
    /// as (index, effective rate) pairs.
    boundary: Vec<(u32, f64)>,
    /// Scratch: survivor indices for compaction.
    keep: Vec<u32>,
    /// Monotone suffix-min structure over the per-tick RTT series:
    /// entries `(tick, rtt)` with both strictly ascending, where an
    /// entry's `rtt` is the minimum over every tick from its `tick` to
    /// now. Replaces a per-client min update (70M loads/compares on the
    /// five-day run) with amortized O(1) per *tick* plus one binary
    /// search per session finish; the result is the min over the same
    /// value set, hence bit-identical. Worst case (monotonically rising
    /// RTT forever) grows one entry per tick — a few MB over five days,
    /// accepted for the hot-loop win.
    rtt_min_stack: Vec<(u64, f64)>,
    /// Ticks stepped so far (incremented at the top of
    /// [`ClientArena::step_all`]); see `arrival_tick`.
    tick_count: u64,
    /// Scratch for the hybrid event engine's decoupled spans: per-tick
    /// aggregate demand recorded during an optimistic replay (the
    /// post-hoc validation input — see [`ClientArena::replay_span`]).
    span_demand: Vec<f64>,
    /// Scratch: records finished during a replay span, keyed by (global
    /// finish tick, slot) so commit can restore the tick loop's
    /// tick-major, slot-ordered append order.
    span_records: Vec<(u64, u32, SessionRecord)>,
    /// Scratch: per-span-tick finish counts, maintained while a span
    /// with folded arrivals replays so each arrival's injection-time
    /// live-session count — the input to its initial share estimate —
    /// can be reconstructed in arrival order.
    finishes_at: Vec<u32>,
    /// Per-session undo log for optimistic replay rollback.
    undo: SpanUndo,
}

/// One arrival folded into a replay span (see
/// [`ClientArena::replay_span`]): the pre-drawn randomness the tick
/// loop would have consumed at the arrival tick — the arm Bernoulli and
/// the forked per-session stream — plus the session's peak demand,
/// which the engine pre-computed from a clone of `rng` (the first three
/// `Client::new` draws) to size the span's demand envelope.
#[derive(Debug, Clone)]
pub(crate) struct SpanArrival {
    /// Span-local tick index the session arrives at (it is injected at
    /// the start of that tick, exactly like the tick loop's arrivals).
    pub tick: u32,
    /// Pre-drawn treatment-arm Bernoulli.
    pub treated: bool,
    /// The forked per-session RNG, unconsumed.
    pub rng: SimRng,
    /// Peak demand the engine derived from a clone of `rng`; the arena
    /// asserts it against the constructed client (the two must track
    /// `Client::new`'s draw order together).
    pub peak: f64,
}

/// Link-world identity a span's folded arrivals are constructed with:
/// constant across the span (spans never cross an hour boundary).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanArrivalCtx {
    pub link_id: LinkId,
    pub day: usize,
    pub hour: usize,
    pub weekend: bool,
    pub capacity_bps: f64,
}

/// Snapshot of every column [`ClientArena::replay_span`] can mutate,
/// taken per live session on entry to an *optimistic* span so a failed
/// validation can restore the arena to the span boundary exactly.
/// Columns the replay never writes (peak/access, watch target, carried
/// min-RTT, arrival/push ticks, chunk params) need no snapshot, and the
/// arena-global state (tick clock, RTT suffix-min stack, records,
/// tombstone count) is only mutated at commit, so rollback is purely
/// this per-session restore.
#[derive(Debug, Default)]
struct SpanUndo {
    idx: Vec<u32>,
    phase: Vec<Phase>,
    buffer_s: Vec<f64>,
    bitrate: Vec<f64>,
    chunk_noise: Vec<f64>,
    chunk_progress_s: Vec<f64>,
    watched_s: Vec<f64>,
    bytes: Vec<f64>,
    retx_bytes: Vec<f64>,
    active_dl_s: Vec<f64>,
    seg_play_ticks: Vec<u64>,
    demand: Vec<f64>,
    throughput_est: Vec<f64>,
    rng: Vec<SimRng>,
    cold: Vec<Cold>,
}

impl SpanUndo {
    fn clear(&mut self) {
        self.idx.clear();
        self.phase.clear();
        self.buffer_s.clear();
        self.bitrate.clear();
        self.chunk_noise.clear();
        self.chunk_progress_s.clear();
        self.watched_s.clear();
        self.bytes.clear();
        self.retx_bytes.clear();
        self.active_dl_s.clear();
        self.seg_play_ticks.clear();
        self.demand.clear();
        self.throughput_est.clear();
        self.rng.clear();
        self.cold.clear();
    }

    fn save(&mut self, a: &ClientArena, i: usize) {
        self.idx.push(i as u32);
        self.phase.push(a.phase[i]);
        self.buffer_s.push(a.buffer_s[i]);
        self.bitrate.push(a.bitrate[i]);
        self.chunk_noise.push(a.chunk_noise[i]);
        self.chunk_progress_s.push(a.chunk_progress_s[i]);
        self.watched_s.push(a.watched_s[i]);
        self.bytes.push(a.bytes[i]);
        self.retx_bytes.push(a.retx_bytes[i]);
        self.active_dl_s.push(a.active_dl_s[i]);
        self.seg_play_ticks.push(a.seg_play_ticks[i]);
        self.demand.push(a.demand[i]);
        self.throughput_est.push(a.throughput_est[i]);
        self.rng.push(a.rng[i].clone());
        self.cold.push(a.cold[i].clone());
    }

    fn restore(&self, a: &mut ClientArena) {
        for (j, &iu) in self.idx.iter().enumerate() {
            let i = iu as usize;
            a.phase[i] = self.phase[j];
            a.buffer_s[i] = self.buffer_s[j];
            a.bitrate[i] = self.bitrate[j];
            a.chunk_noise[i] = self.chunk_noise[j];
            a.chunk_progress_s[i] = self.chunk_progress_s[j];
            a.watched_s[i] = self.watched_s[j];
            a.bytes[i] = self.bytes[j];
            a.retx_bytes[i] = self.retx_bytes[j];
            a.active_dl_s[i] = self.active_dl_s[j];
            a.seg_play_ticks[i] = self.seg_play_ticks[j];
            a.demand[i] = self.demand[j];
            a.throughput_est[i] = self.throughput_est[j];
            a.rng[i] = self.rng[j].clone();
            a.cold[i] = self.cold[j].clone();
            // Every snapshotted session was live at span entry; undo any
            // tombstoning the replayed finishes did.
            a.dead[i] = false;
        }
    }
}

/// Aggregates of a committed replay span, in the re-associated
/// (per-session, not per-tick) order the span computes them —
/// numerically within 1e-9 of the tick loop's per-tick accumulation,
/// which is the hourly-stats tolerance contract.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanStats {
    /// Whether any session finished during the span (caller must drop
    /// finished slots from its allocation order, as after
    /// [`ClientArena::step_all`]).
    pub any_finished: bool,
    /// Σ over sessions of peak demand × ticks spent demanding; divided
    /// by capacity this is the span's utilization integral (every
    /// demanding session is served exactly its peak in a decoupled span).
    pub demand_ticks_bps: f64,
    /// Σ over ticks of the post-tick live-session count (the
    /// concurrency integral).
    pub alive_ticks: u64,
}

/// Outcome of [`ClientArena::replay_span`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum SpanResult {
    /// Every tick validated (or validation was not requested): session
    /// state, records, tombstones and the tick clock are committed.
    Committed(SpanStats),
    /// Optimistic validation failed: the carried tick (span-local, the
    /// first of its kind) saw aggregate demand above the decoupled-fit
    /// bound, so shares would not have been the identity from that tick
    /// on. Every session has been restored to span entry and nothing
    /// was emitted; the caller may salvage the validated prefix (its
    /// fit is now *proven*, so an unvalidated re-replay commits it)
    /// and must run the rest coupled.
    RolledBack(usize),
}

impl ClientArena {
    /// Empty arena.
    pub fn new() -> ClientArena {
        ClientArena::default()
    }

    /// Number of session slots, including tombstoned (dead) slots that
    /// have not been compacted away yet. Columns and the shares buffer
    /// are sized by this.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the arena holds no session slots.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Number of live (not finished) sessions.
    pub fn live_sessions(&self) -> usize {
        self.len() - self.dead_count
    }

    /// Current per-session demands (bits/s), index-aligned with the
    /// arena. This is the column the bandwidth allocator consumes.
    pub fn demands(&self) -> &[f64] {
        &self.demand
    }

    /// Per-session peak demand (the constant non-zero demand value).
    pub fn peak_demands(&self) -> &[f64] {
        &self.peak_demand
    }

    /// Admit a client: decompose it into the columns. Its initial
    /// demand is whatever the scalar [`Client::demand`] reports.
    pub fn push(&mut self, cfg: &StreamConfig, client: Client) {
        // The download pass checks chunk boundaries only for sessions
        // that made progress this tick; that is sound because progress
        // is always below the chunk length between ticks.
        debug_assert!(
            client.chunk_progress_s < cfg.chunk_s,
            "client injected mid-boundary"
        );
        let demand_now = client.demand(cfg).rate_bps;
        let peak = client.access_bps.min(cfg.session_max_bps);
        self.phase.push(client.phase);
        self.buffer_s.push(client.buffer_s);
        self.bitrate.push(client.bitrate);
        self.chunk_noise.push(client.chunk_noise);
        self.chunk_progress_s.push(client.chunk_progress_s);
        self.access_bps.push(client.access_bps);
        self.watched_s.push(client.watched_s);
        self.watch_target_s.push(client.watch_target_s);
        self.min_rtt_s.push(client.min_rtt_s);
        self.bytes.push(client.bytes);
        self.retx_bytes.push(client.retx_bytes);
        self.active_dl_s.push(client.active_dl_s);
        // Wrapping keeps pre-stepped injected clients exact: the finish
        // subtraction re-adds the same wrap.
        self.arrival_tick
            .push(self.tick_count.wrapping_sub(client.ticks_alive));
        self.push_tick.push(self.tick_count);
        self.seg_play_ticks.push(client.seg_play_ticks);
        self.demand.push(demand_now);
        self.peak_demand.push(peak);
        self.throughput_est.push(client.throughput_est);
        self.chunk_params.push(ChunkParams {
            sigma: client.noise_sigma,
            dip_prob: client.dip_prob,
            permitted: if client.treated {
                Ladder::permitted_rungs_in(&cfg.ladder_bps, cfg.cap_bps)
            } else {
                cfg.ladder_bps.len()
            },
        });
        self.rng.push(client.rng);
        self.dead.push(false);
        self.cold.push(Cold {
            link: client.link,
            day: client.day,
            hour: client.hour,
            weekend: client.weekend,
            arrival_s: client.arrival_s,
            treated: client.treated,
            patience_s: client.patience_s,
            play_delay_s: client.play_delay_s,
            rebuffer_count: client.rebuffer_count,
            switches: client.switches,
            bitrate_time_product: client.bitrate_time_product,
            quality_time_product: client.quality_time_product,
        });
    }

    /// Advance every session one tick given its allocated rate and the
    /// shared link state. Finished sessions' records are appended to
    /// `records` and their slots flagged in `finished` (cleared and
    /// resized to the population); returns whether any session finished.
    ///
    /// `downloaders` lists the sessions that may be downloading this
    /// tick — it must be duplicate-free and include every session whose
    /// share is positive and whose download gate is open (extra
    /// sessions are harmless: their download block no-ops exactly like
    /// the scalar skip). `LinkSim` passes its active allocation order;
    /// `0..len` is always a valid, conservative choice. Idle sessions
    /// provably transfer nothing (zero share ⇒ zero rate), so skipping
    /// them keeps the download pass proportional to the *active*
    /// population.
    ///
    /// Survivors' next-tick demands are refreshed in the
    /// [`ClientArena::demands`] column. Call [`ClientArena::compact`]
    /// afterwards when any finished.
    #[allow(clippy::too_many_arguments)]
    pub fn step_all(
        &mut self,
        cfg: &StreamConfig,
        ladder: &Ladder,
        shares: &[f64],
        downloaders: &[usize],
        rtt_s: f64,
        loss: f64,
        now_s: f64,
        dt_s: f64,
        records: &mut Vec<SessionRecord>,
        finished: &mut Vec<bool>,
    ) -> bool {
        let n = self.len();
        debug_assert_eq!(shares.len(), n, "one share per session");
        // The permitted-rung prefixes in `chunk_params` were computed
        // from `cfg.ladder_bps` at push time; the ladder stepped with
        // must be the same one.
        debug_assert_eq!(ladder.rates(), &cfg.ladder_bps[..]);
        self.tick_count += 1;
        finished.clear();
        finished.resize(n, false);

        // Record this tick's RTT in the global suffix-min structure:
        // pop entries whose minima the new value subsumes, then push it
        // with the earliest tick it now covers. Amortized O(1).
        {
            let mut covers_from = self.tick_count;
            while let Some(&(t, v)) = self.rtt_min_stack.last() {
                if v >= rtt_s {
                    covers_from = t;
                    self.rtt_min_stack.pop();
                } else {
                    break;
                }
            }
            self.rtt_min_stack.push((covers_from, rtt_s));
        }

        // Destructure into same-length slices: with every column sliced
        // to `..n` the optimizer proves `i < n` once per indexed loop
        // and elides the per-access bounds checks.
        let ClientArena {
            phase,
            buffer_s,
            bitrate,
            chunk_noise,
            chunk_progress_s,
            access_bps,
            watched_s,
            watch_target_s,
            min_rtt_s,
            bytes,
            retx_bytes,
            active_dl_s,
            arrival_tick,
            push_tick,
            seg_play_ticks,
            demand,
            peak_demand,
            throughput_est,
            chunk_params,
            rng,
            cold,
            dead,
            dead_count,
            boundary,
            keep: _,
            rtt_min_stack,
            tick_count,
            span_demand: _,
            span_records: _,
            finishes_at: _,
            undo: _,
        } = self;
        let rtt_min_stack = &rtt_min_stack[..];
        let tick_count = *tick_count;
        let shares = &shares[..n];
        let phase = &mut phase[..n];
        let buffer_s = &mut buffer_s[..n];
        let bitrate = &mut bitrate[..n];
        let chunk_noise = &mut chunk_noise[..n];
        let chunk_progress_s = &mut chunk_progress_s[..n];
        let access_bps = &access_bps[..n];
        let watched_s = &mut watched_s[..n];
        let watch_target_s = &watch_target_s[..n];
        let min_rtt_s = &mut min_rtt_s[..n];
        let bytes = &mut bytes[..n];
        let retx_bytes = &mut retx_bytes[..n];
        let active_dl_s = &mut active_dl_s[..n];
        let arrival_tick = &arrival_tick[..n];
        let push_tick = &push_tick[..n];
        let seg_play_ticks = &mut seg_play_ticks[..n];
        let demand = &mut demand[..n];
        let peak_demand = &peak_demand[..n];
        let throughput_est = &mut throughput_est[..n];
        let chunk_params = &chunk_params[..n];
        let rng = &mut rng[..n];
        let cold = &mut cold[..n];
        let dead = &mut dead[..n];

        // Pass 1: download arithmetic, only over the sessions that can
        // transfer. The loss factors are tick-constant and hoisted; the
        // per-client expressions are term-for-term those of
        // `Client::step`. The chunk-boundary test lives inside the
        // `rate > 0` block because progress is below the chunk length
        // between ticks (a boundary resets it the tick it fires), so
        // only sessions that added progress this tick can cross; the
        // collection itself is branch-free — an unconditional write at
        // the list head plus a conditional advance (the same pattern as
        // `LinkSim`'s order build).
        let one_minus_loss = 1.0 - loss;
        let retx_factor = cfg.loss_floor + loss * cfg.loss_to_retx;
        let max_buffer_s = cfg.max_buffer_s;
        let chunk_s = cfg.chunk_s;
        if boundary.len() < n {
            boundary.resize(n, (0, 0.0));
        }
        let boundary_scratch = &mut boundary[..n];
        let mut n_boundary = 0usize;
        for &i in downloaders {
            let downloading = phase[i] != Phase::Playing || buffer_s[i] < max_buffer_s;
            if downloading {
                let rate = shares[i].min(access_bps[i]) * chunk_noise[i] * one_minus_loss;
                if rate > 0.0 {
                    let payload_bytes = rate * dt_s / 8.0;
                    bytes[i] += payload_bytes;
                    retx_bytes[i] += payload_bytes * retx_factor;
                    active_dl_s[i] += dt_s;
                    let video_s = rate * dt_s / bitrate[i];
                    buffer_s[i] += video_s;
                    let progress = chunk_progress_s[i] + video_s;
                    chunk_progress_s[i] = progress;
                    boundary_scratch[n_boundary] = (i as u32, rate);
                    n_boundary += usize::from(progress >= chunk_s);
                }
            }
        }

        // Pass 2 (slow path), split into two loops over the collected
        // boundaries. Pass 2a batches the RNG work: each session's two
        // draws (ziggurat normal, then the dip Bernoulli — the same
        // per-stream order as the scalar reference, so records stay
        // bit-identical) plus the `fast_exp` noise rebuild, touching
        // only the rng/chunk_params/chunk_noise columns. Pass 2b then
        // does the ABR bookkeeping (EWMA, ladder walk, segment fold)
        // with no RNG in the loop body. Measured interleaved old-vs-new
        // on the 1-vCPU reference box: five_day_default 1.370 s vs
        // 1.392 s means over six rounds — neutral within the ±5% noise
        // band (the hoped-for cross-session overlap of the serial
        // xoshiro chains did not show up as wall-clock). Kept because
        // the draw loop is now a self-contained batch point: a SIMD or
        // table-sharing sampler can replace pass 2a without touching
        // the ABR logic.
        for &(iu, _) in boundary_scratch[..n_boundary].iter() {
            let i = iu as usize;
            let p = chunk_params[i];
            let z = rng[i].standard_normal();
            let mut noise = dessim::fast_exp(-0.5 * p.sigma * p.sigma + p.sigma * z);
            // Rare difficulty dips: a transient collapse that can drain
            // the buffer (rebuffer driver independent of link congestion).
            if rng[i].bernoulli(p.dip_prob) {
                noise *= 0.12;
            }
            chunk_noise[i] = noise;
        }
        for &(iu, rate) in boundary_scratch[..n_boundary].iter() {
            let i = iu as usize;
            chunk_progress_s[i] = 0.0;
            // `rate > 0` held when the boundary was collected, but the
            // scalar reference guards the EWMA on it, so keep the guard
            // for exactness under future collection changes.
            if rate > 0.0 {
                throughput_est[i] = 0.8 * throughput_est[i] + 0.2 * rate;
            }
            let p = chunk_params[i];
            let next = ladder.select_from_top(p.permitted, throughput_est[i], cfg.abr_safety);
            if next != bitrate[i] {
                if phase[i] != Phase::Startup && (next - bitrate[i]).abs() > 1.0 {
                    cold[i].switches += 1;
                }
                fold_products(&mut seg_play_ticks[i], bitrate[i], &mut cold[i], dt_s);
                bitrate[i] = next;
            }
        }

        // Pass 3: phase transitions, completions (whose records pull
        // the session's minimum RTT out of the global suffix-min stack
        // — the min over the same per-tick values the scalar folds
        // incrementally, hence the same f64), and the fused demand
        // refresh for survivors.
        let mut any_finished = false;
        for i in 0..n {
            if dead[i] {
                continue; // tombstone awaiting compaction
            }
            match phase[i] {
                Phase::Startup => {
                    if buffer_s[i] >= cfg.startup_buffer_s {
                        phase[i] = Phase::Playing;
                        // Startup cost: fill time plus connection setup RTTs.
                        cold[i].play_delay_s = (now_s - cold[i].arrival_s) + 3.0 * rtt_s;
                    } else if now_s - cold[i].arrival_s > cold[i].patience_s {
                        records.push(finish_record(
                            FinishSlot {
                                ticks_alive: tick_count.wrapping_sub(arrival_tick[i]),
                                watched_s: watched_s[i],
                                active_dl_s: active_dl_s[i],
                                min_rtt_s: min_rtt_s[i]
                                    .min(window_min_rtt(rtt_min_stack, push_tick[i] + 1)),
                                bitrate: bitrate[i],
                                seg_play_ticks: &mut seg_play_ticks[i],
                                bytes: bytes[i],
                                retx_bytes: &mut retx_bytes[i],
                                cold: &mut cold[i],
                            },
                            cfg,
                            dt_s,
                            now_s,
                            true,
                        ));
                        finished[i] = true;
                        dead[i] = true;
                        *dead_count += 1;
                        // Dead slots are omitted from the allocation
                        // order, whose contract requires their demand
                        // to be zero.
                        demand[i] = 0.0;
                        any_finished = true;
                        continue;
                    }
                }
                Phase::Playing => {
                    watched_s[i] += dt_s;
                    buffer_s[i] -= dt_s;
                    seg_play_ticks[i] += 1;
                    if buffer_s[i] <= 0.0 {
                        buffer_s[i] = 0.0;
                        phase[i] = Phase::Rebuffering;
                        cold[i].rebuffer_count += 1;
                    }
                    if watched_s[i] >= watch_target_s[i] {
                        records.push(finish_record(
                            FinishSlot {
                                ticks_alive: tick_count.wrapping_sub(arrival_tick[i]),
                                watched_s: watched_s[i],
                                active_dl_s: active_dl_s[i],
                                min_rtt_s: min_rtt_s[i]
                                    .min(window_min_rtt(rtt_min_stack, push_tick[i] + 1)),
                                bitrate: bitrate[i],
                                seg_play_ticks: &mut seg_play_ticks[i],
                                bytes: bytes[i],
                                retx_bytes: &mut retx_bytes[i],
                                cold: &mut cold[i],
                            },
                            cfg,
                            dt_s,
                            now_s,
                            false,
                        ));
                        finished[i] = true;
                        dead[i] = true;
                        *dead_count += 1;
                        demand[i] = 0.0;
                        any_finished = true;
                        continue;
                    }
                }
                Phase::Rebuffering => {
                    if buffer_s[i] >= cfg.resume_buffer_s {
                        phase[i] = Phase::Playing;
                    }
                }
            }
            // Demand is two-valued: zero while idling on a full playback
            // buffer, the constant peak rate otherwise (see
            // `Client::demand`).
            demand[i] = if phase[i] == Phase::Playing && buffer_s[i] >= max_buffer_s {
                0.0
            } else {
                peak_demand[i]
            };
        }
        any_finished
    }

    /// Advance every live session `nows.len() - 1` ticks *decoupled*:
    /// session-major instead of tick-major, each session stepped with
    /// its own demand as its share under link conditions frozen at
    /// `rtt_s` / zero loss. This is the hybrid event engine's span
    /// primitive (see [`crate::engine`]); the caller guarantees the
    /// decoupled-fit invariant ([`FluidLink::decoupled_fit_bound_bps`]
    /// — empty queue, aggregate demand under capacity) under which
    /// water-filling is the identity and the link state is a fixed
    /// point, so the per-tick arithmetic below — term-for-term the
    /// [`ClientArena::step_all`] passes with `share == peak demand`,
    /// `1 - loss == 1.0` — produces bit-identical session trajectories
    /// and records. Sessions only ever interact through the shared
    /// link, so reordering tick-major to session-major changes nothing;
    /// each session's RNG is a private stream, so per-stream draw order
    /// is preserved too.
    ///
    /// `nows[k]` is the simulation time at the *start* of span tick `k`
    /// — the tick loop's own repeated `now += dt` chain, which the
    /// caller extends rather than recomputes so the floats match
    /// bitwise; tick `k` sees `now_s = nows[k + 1]` in its phase pass,
    /// exactly like the coupled loop.
    ///
    /// With `validate_below = Some(bound)` the span is *optimistic*:
    /// the caller could not prove the fit from peak demands alone, so
    /// per-tick aggregate demand is accumulated during the replay and
    /// checked afterwards. On violation every session is restored from
    /// an undo log, nothing is emitted, and
    /// [`SpanResult::RolledBack`] tells the caller to re-run the span
    /// coupled. With `None` the fit is guaranteed (aggregate *peak*
    /// demand fits, and demand never exceeds peak), so the undo log and
    /// validation are skipped.
    ///
    /// `arrivals` (span-local tick order, pre-drawn randomness — see
    /// [`SpanArrival`]) are *folded into* the span: after every
    /// pre-existing session has replayed (wave 1), each arrival is
    /// constructed at its arrival tick with the exact live-session
    /// count the tick loop would have seen — reconstructed from wave
    /// 1's per-tick finish counts plus earlier arrivals' — injected at
    /// the arena tail (the tick loop's slot order), and replayed over
    /// the rest of the span (wave 2). Wave 2 runs in arrival order, so
    /// an earlier arrival's mid-span finish is visible to a later
    /// arrival's live count, exactly as in the coupled loop.
    ///
    /// On commit, finished sessions' records land in `records` in
    /// (finish tick, slot) order — the tick loop's append order — their
    /// slots are flagged in `finished` (grown past the entry population
    /// by one slot per folded arrival) and tombstoned, and the tick
    /// clock and RTT suffix-min stack advance by the whole span in one
    /// transaction. The caller must add surviving arrivals to its
    /// allocation order. On rollback `records` is untouched, `finished`
    /// is meaningless, and the injected arrivals are truncated away —
    /// the caller may salvage the prefix before the failing tick with
    /// an unvalidated re-replay (its fit is proven by the very
    /// validation that failed later) and re-runs the rest coupled,
    /// re-injecting from the same pre-drawn `arrivals`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_span(
        &mut self,
        cfg: &StreamConfig,
        ladder: &Ladder,
        rtt_s: f64,
        nows: &[f64],
        dt_s: f64,
        validate_below: Option<f64>,
        arrivals: &[SpanArrival],
        actx: &SpanArrivalCtx,
        records: &mut Vec<SessionRecord>,
        finished: &mut Vec<bool>,
    ) -> SpanResult {
        let span = nows.len() - 1;
        let base_n = self.len();
        let base_live = self.live_sessions();
        debug_assert!(span > 0, "empty replay span");
        debug_assert_eq!(ladder.rates(), &cfg.ladder_bps[..]);
        let start_tick = self.tick_count;
        let validating = validate_below.is_some();
        let track_finishes = !arrivals.is_empty();

        let mut span_records = std::mem::take(&mut self.span_records);
        span_records.clear();
        let mut undo = std::mem::take(&mut self.undo);
        undo.clear();
        let mut span_demand = std::mem::take(&mut self.span_demand);
        if validating {
            span_demand.clear();
            span_demand.resize(span, 0.0);
        }
        let mut finishes_at = std::mem::take(&mut self.finishes_at);
        if track_finishes {
            finishes_at.clear();
            finishes_at.resize(span, 0);
        }

        finished.clear();
        finished.resize(base_n, false);

        let mut any_finished = false;
        let mut demand_ticks_bps = 0.0f64;
        let mut alive_ticks = 0u64;
        let mut finished_now = 0usize;

        // Wave 1: every pre-existing live session replays the whole
        // span.
        for (i, fin) in finished.iter_mut().enumerate() {
            if self.dead[i] {
                continue; // tombstone awaiting compaction
            }
            if validating {
                undo.save(self, i);
            }
            let (demanding, done_at) = self.replay_one(
                cfg,
                ladder,
                rtt_s,
                nows,
                dt_s,
                start_tick,
                i,
                0,
                validating,
                &mut span_demand,
                &mut span_records,
            );
            demand_ticks_bps += self.peak_demand[i] * demanding as f64;
            if let Some((k_done, _)) = done_at {
                alive_ticks += k_done as u64;
                *fin = true;
                finished_now += 1;
                any_finished = true;
                if track_finishes {
                    finishes_at[k_done] += 1;
                }
            } else {
                alive_ticks += span as u64;
            }
        }

        // Wave 2: folded arrivals, in arrival order. `live` tracks the
        // live-session count at the walk position — the value
        // `LinkSim`'s tick would read for the initial-share estimate —
        // by subtracting finish counts as the walk passes their ticks.
        // Same-tick arrivals share one count taken *before* any of them
        // is injected, exactly like the tick loop's single
        // `share_now` read per tick.
        let mut live = base_live;
        let mut fin_cursor = 0usize;
        let mut j = 0usize;
        while j < arrivals.len() {
            let ka = arrivals[j].tick as usize;
            debug_assert!(ka < span, "arrival beyond span");
            while fin_cursor < ka {
                live -= finishes_at[fin_cursor] as usize;
                fin_cursor += 1;
            }
            let share_now = actx.capacity_bps / (live as f64 + 1.0).max(1.0);
            let mut g = j;
            while g < arrivals.len() && arrivals[g].tick as usize == ka {
                g += 1;
            }
            for a in &arrivals[j..g] {
                let client = Client::new(
                    cfg,
                    ladder,
                    actx.link_id,
                    actx.day,
                    actx.hour,
                    actx.weekend,
                    nows[ka],
                    a.treated,
                    share_now.min(cfg.session_max_bps),
                    a.rng.clone(),
                );
                let idx = self.len();
                // Push as of the arrival tick so the slot's push/arrival
                // tick stamps (min-RTT window start, ticks-alive base)
                // match the tick loop's; the span clock itself advances
                // only at commit.
                self.tick_count = start_tick + ka as u64;
                self.push(cfg, client);
                self.tick_count = start_tick;
                debug_assert_eq!(
                    self.peak_demand[idx].to_bits(),
                    a.peak.to_bits(),
                    "pre-scan peak diverged from Client::new draw order"
                );
                finished.push(false);
                let (demanding, done_at) = self.replay_one(
                    cfg,
                    ladder,
                    rtt_s,
                    nows,
                    dt_s,
                    start_tick,
                    idx,
                    ka,
                    validating,
                    &mut span_demand,
                    &mut span_records,
                );
                demand_ticks_bps += self.peak_demand[idx] * demanding as f64;
                if let Some((k_done, _)) = done_at {
                    alive_ticks += (k_done - ka) as u64;
                    finished[idx] = true;
                    finished_now += 1;
                    any_finished = true;
                    finishes_at[k_done] += 1;
                } else {
                    alive_ticks += (span - ka) as u64;
                }
            }
            live += g - j;
            j = g;
        }
        let failed = if validating {
            let bound = validate_below.unwrap();
            span_demand[..span].iter().position(|&d| d > bound)
        } else {
            None
        };
        let result = if let Some(kf) = failed {
            // Injected arrivals sit at the tail (pushed after the wave-1
            // snapshot); drop them first, then restore the snapshotted
            // sessions in place.
            self.truncate_to(base_n);
            undo.restore(self);
            SpanResult::RolledBack(kf)
        } else {
            // Commit the arena-global state in one transaction. The RTT
            // suffix-min stack update is `span` identical per-tick pushes
            // collapsed into one: the first push (tick `start + 1`) pops
            // every entry with a value ≥ the span RTT and covers from
            // the earliest tick popped; the rest are no-ops.
            self.tick_count = start_tick + span as u64;
            let mut covers_from = start_tick + 1;
            while let Some(&(t, v)) = self.rtt_min_stack.last() {
                if v >= rtt_s {
                    covers_from = t;
                    self.rtt_min_stack.pop();
                } else {
                    break;
                }
            }
            self.rtt_min_stack.push((covers_from, rtt_s));
            self.dead_count += finished_now;
            span_records.sort_unstable_by_key(|r| (r.0, r.1));
            records.extend(span_records.drain(..).map(|r| r.2));
            SpanResult::Committed(SpanStats {
                any_finished,
                demand_ticks_bps,
                alive_ticks,
            })
        };
        self.span_records = span_records;
        self.undo = undo;
        self.span_demand = span_demand;
        self.finishes_at = finishes_at;
        result
    }

    /// Replay one session (slot `i`) over span ticks `[k0, span)`: the
    /// per-session inner loop of [`ClientArena::replay_span`], shared
    /// by wave 1 (`k0 == 0`) and wave-2 folded arrivals (`k0` = the
    /// arrival tick). Writes the final state (and tombstone, on finish)
    /// back to the columns, pushes any finish record onto
    /// `span_records`, and returns the ticks spent demanding plus the
    /// span-local finish tick / cancel flag if the session ended.
    #[allow(clippy::too_many_arguments)]
    fn replay_one(
        &mut self,
        cfg: &StreamConfig,
        ladder: &Ladder,
        rtt_s: f64,
        nows: &[f64],
        dt_s: f64,
        start_tick: u64,
        i: usize,
        k0: usize,
        validating: bool,
        span_demand: &mut [f64],
        span_records: &mut Vec<(u64, u32, SessionRecord)>,
    ) -> (u64, Option<(usize, bool)>) {
        let span = nows.len() - 1;
        // Tick-constant factors, as hoisted by `step_all`. Loss is
        // exactly zero in a decoupled span, so the factors reduce to
        // `1.0` / the loss floor — spelled the same way so the rounding
        // is the same.
        let loss = 0.0;
        let one_minus_loss = 1.0 - loss;
        let retx_factor = cfg.loss_floor + loss * cfg.loss_to_retx;
        let max_buffer_s = cfg.max_buffer_s;
        let chunk_s = cfg.chunk_s;

        // Load the slot into locals: the whole span runs out of
        // registers, touching memory only at chunk boundaries (RNG,
        // cold table) and at the final write-back.
        let mut phase = self.phase[i];
        let mut buffer = self.buffer_s[i];
        let mut bitrate = self.bitrate[i];
        let mut noise = self.chunk_noise[i];
        let mut progress = self.chunk_progress_s[i];
        let access = self.access_bps[i];
        let mut watched = self.watched_s[i];
        let watch_target = self.watch_target_s[i];
        let mut bytes = self.bytes[i];
        let mut retx = self.retx_bytes[i];
        let mut active_dl = self.active_dl_s[i];
        let mut seg_play = self.seg_play_ticks[i];
        let mut est = self.throughput_est[i];
        let peak = self.peak_demand[i];
        let params = self.chunk_params[i];
        let arrival_s = self.cold[i].arrival_s;
        let patience_s = self.cold[i].patience_s;
        let mut demanding = 0u64;
        let mut done_at: Option<(usize, bool)> = None;

        // The download arithmetic is tick-invariant between chunk
        // boundaries (noise and bitrate only change there), so the
        // per-tick products and the share→video division hoist out
        // of the tick loop: same values, same operations, computed
        // once per boundary instead of once per tick. `pa` is
        // `peak.min(access)`, which is `shares[i].min(access_bps[i])`
        // bitwise since peak ≤ access by construction.
        let pa = peak.min(access);
        let mut rate = pa * noise * one_minus_loss;
        let mut rate_pos = rate > 0.0;
        let mut payload_bytes = rate * dt_s / 8.0;
        let mut retx_bytes_tick = payload_bytes * retx_factor;
        let mut video_s = rate * dt_s / bitrate;

        // The chunk-boundary slow path (pass 2 of the tick): the
        // session's two draws in per-stream order, then the ABR
        // bookkeeping, then the refresh of the hoisted download
        // constants. `$counts_switch` is `phase != Phase::Startup`,
        // statically known in each phase-specialized loop below.
        macro_rules! chunk_boundary {
            ($counts_switch:expr) => {{
                let z = self.rng[i].standard_normal();
                let mut next_noise =
                    dessim::fast_exp(-0.5 * params.sigma * params.sigma + params.sigma * z);
                if self.rng[i].bernoulli(params.dip_prob) {
                    next_noise *= 0.12;
                }
                progress = 0.0;
                if rate > 0.0 {
                    est = 0.8 * est + 0.2 * rate;
                }
                let next = ladder.select_from_top(params.permitted, est, cfg.abr_safety);
                if next != bitrate {
                    if $counts_switch && (next - bitrate).abs() > 1.0 {
                        self.cold[i].switches += 1;
                    }
                    fold_products(&mut seg_play, bitrate, &mut self.cold[i], dt_s);
                    bitrate = next;
                }
                noise = next_noise;
                rate = pa * noise * one_minus_loss;
                rate_pos = rate > 0.0;
                payload_bytes = rate * dt_s / 8.0;
                retx_bytes_tick = payload_bytes * retx_factor;
                video_s = rate * dt_s / bitrate;
            }};
        }

        // The tick loop, specialized per phase: each inner loop runs
        // ticks until the phase changes, the session finishes, or the
        // span ends. Per tick each loop performs exactly the tick
        // loop's pass-1/2/3 operations in the tick loop's order —
        // the specialization only removes the per-tick phase match
        // and the branches whose outcome the phase decides.
        let nows_next = &nows[1..];
        let mut k = k0;
        'ticks: while k < span {
            match phase {
                // Startup downloads unconditionally (not Playing).
                Phase::Startup => {
                    while k < span {
                        let now_next = nows_next[k];
                        let kt = k;
                        k += 1;
                        demanding += 1;
                        if validating {
                            span_demand[kt] += peak;
                        }
                        let mut at_boundary = false;
                        if rate_pos {
                            bytes += payload_bytes;
                            retx += retx_bytes_tick;
                            active_dl += dt_s;
                            buffer += video_s;
                            progress += video_s;
                            at_boundary = progress >= chunk_s;
                        }
                        if at_boundary {
                            chunk_boundary!(false);
                        }
                        if buffer >= cfg.startup_buffer_s {
                            phase = Phase::Playing;
                            self.cold[i].play_delay_s = (now_next - arrival_s) + 3.0 * rtt_s;
                            continue 'ticks;
                        }
                        if now_next - arrival_s > patience_s {
                            done_at = Some((kt, true));
                            break 'ticks;
                        }
                    }
                }
                // The steady state: downloads whenever the buffer
                // has room.
                Phase::Playing => {
                    while k < span {
                        let kt = k;
                        k += 1;
                        if buffer < max_buffer_s {
                            demanding += 1;
                            if validating {
                                span_demand[kt] += peak;
                            }
                            if rate_pos {
                                bytes += payload_bytes;
                                retx += retx_bytes_tick;
                                active_dl += dt_s;
                                buffer += video_s;
                                progress += video_s;
                                if progress >= chunk_s {
                                    chunk_boundary!(true);
                                }
                            }
                        }
                        watched += dt_s;
                        buffer -= dt_s;
                        seg_play += 1;
                        if buffer <= 0.0 {
                            buffer = 0.0;
                            phase = Phase::Rebuffering;
                            self.cold[i].rebuffer_count += 1;
                            if watched >= watch_target {
                                done_at = Some((kt, false));
                                break 'ticks;
                            }
                            continue 'ticks;
                        }
                        if watched >= watch_target {
                            done_at = Some((kt, false));
                            break 'ticks;
                        }
                    }
                }
                // Rebuffering downloads unconditionally (not Playing).
                Phase::Rebuffering => {
                    while k < span {
                        let kt = k;
                        k += 1;
                        demanding += 1;
                        if validating {
                            span_demand[kt] += peak;
                        }
                        let mut at_boundary = false;
                        if rate_pos {
                            bytes += payload_bytes;
                            retx += retx_bytes_tick;
                            active_dl += dt_s;
                            buffer += video_s;
                            progress += video_s;
                            at_boundary = progress >= chunk_s;
                        }
                        if at_boundary {
                            chunk_boundary!(true);
                        }
                        if buffer >= cfg.resume_buffer_s {
                            phase = Phase::Playing;
                            continue 'ticks;
                        }
                    }
                }
            }
        }

        if let Some((k_done, cancelled)) = done_at {
            // The session's min RTT over its observation window: the
            // window always contains a span tick, whose RTT (base +
            // empty queue) is the global minimum value, so the
            // suffix-min stack query the tick loop does reduces to
            // `rtt_s` exactly.
            let finish_tick = start_tick + k_done as u64 + 1;
            let rec = finish_record(
                FinishSlot {
                    ticks_alive: finish_tick.wrapping_sub(self.arrival_tick[i]),
                    watched_s: watched,
                    active_dl_s: active_dl,
                    min_rtt_s: self.min_rtt_s[i].min(rtt_s),
                    bitrate,
                    seg_play_ticks: &mut seg_play,
                    bytes,
                    retx_bytes: &mut retx,
                    cold: &mut self.cold[i],
                },
                cfg,
                dt_s,
                nows[k_done + 1],
                cancelled,
            );
            span_records.push((finish_tick, i as u32, rec));
        }

        // Write the locals back and refresh the demand column from
        // the final state (the same two-valued rule the tick loop
        // applies every tick; intermediate values are unobservable
        // because no other session reads them in a decoupled span).
        self.phase[i] = phase;
        self.buffer_s[i] = buffer;
        self.bitrate[i] = bitrate;
        self.chunk_noise[i] = noise;
        self.chunk_progress_s[i] = progress;
        self.watched_s[i] = watched;
        self.bytes[i] = bytes;
        self.retx_bytes[i] = retx;
        self.active_dl_s[i] = active_dl;
        self.seg_play_ticks[i] = seg_play;
        self.throughput_est[i] = est;
        if done_at.is_some() {
            self.dead[i] = true;
            // Dead slots are omitted from the allocation order, whose
            // contract requires their demand to be zero.
            self.demand[i] = 0.0;
        } else {
            self.demand[i] = if phase == Phase::Playing && buffer >= max_buffer_s {
                0.0
            } else {
                peak
            };
        }
        (demanding, done_at)
    }

    /// Drop every slot from `n` up: the inverse of the tail pushes a
    /// rolled-back span's folded arrivals did. None of the removed
    /// slots is reflected in `dead_count` (a span's finish counts are
    /// committed in one transaction a rollback never reaches), so only
    /// the columns shrink.
    fn truncate_to(&mut self, n: usize) {
        self.phase.truncate(n);
        self.buffer_s.truncate(n);
        self.bitrate.truncate(n);
        self.chunk_noise.truncate(n);
        self.chunk_progress_s.truncate(n);
        self.access_bps.truncate(n);
        self.watched_s.truncate(n);
        self.watch_target_s.truncate(n);
        self.min_rtt_s.truncate(n);
        self.bytes.truncate(n);
        self.retx_bytes.truncate(n);
        self.active_dl_s.truncate(n);
        self.arrival_tick.truncate(n);
        self.push_tick.truncate(n);
        self.seg_play_ticks.truncate(n);
        self.demand.truncate(n);
        self.peak_demand.truncate(n);
        self.throughput_est.truncate(n);
        self.chunk_params.truncate(n);
        self.rng.truncate(n);
        self.dead.truncate(n);
        self.cold.truncate(n);
    }

    /// Whether enough tombstones have accumulated that a compaction
    /// pays for itself. The threshold (at least 32 dead and at least a
    /// quarter of the slots) amortizes the whole-arena gather over many
    /// finishes: per-tick compaction was ~10% of the five-day run.
    pub fn needs_compaction(&self) -> bool {
        self.dead_count >= 32 && 4 * self.dead_count >= self.len()
    }

    /// Remove every tombstoned slot from every column, preserving the
    /// order of survivors, and record the old→new index mapping in
    /// `remap` (`usize::MAX` for removed slots) so callers can fix up
    /// index permutations.
    pub fn compact_stale(&mut self, remap: &mut Vec<usize>) {
        // Survivor indices once, then one branch-free gather per column
        // (a per-column `retain` re-pays the flag branch 20 times).
        let mut keep = std::mem::take(&mut self.keep);
        keep.clear();
        remap.clear();
        remap.resize(self.len(), usize::MAX);
        for (i, &done) in self.dead.iter().enumerate() {
            if !done {
                remap[i] = keep.len();
                keep.push(i as u32);
            }
        }
        fn gather<T: Clone>(col: &mut Vec<T>, keep: &[u32]) {
            for (new, &old) in keep.iter().enumerate() {
                col[new] = col[old as usize].clone();
            }
            col.truncate(keep.len());
        }
        gather(&mut self.phase, &keep);
        gather(&mut self.buffer_s, &keep);
        gather(&mut self.bitrate, &keep);
        gather(&mut self.chunk_noise, &keep);
        gather(&mut self.chunk_progress_s, &keep);
        gather(&mut self.access_bps, &keep);
        gather(&mut self.watched_s, &keep);
        gather(&mut self.watch_target_s, &keep);
        gather(&mut self.min_rtt_s, &keep);
        gather(&mut self.bytes, &keep);
        gather(&mut self.retx_bytes, &keep);
        gather(&mut self.active_dl_s, &keep);
        gather(&mut self.arrival_tick, &keep);
        gather(&mut self.push_tick, &keep);
        gather(&mut self.seg_play_ticks, &keep);
        gather(&mut self.demand, &keep);
        gather(&mut self.peak_demand, &keep);
        gather(&mut self.throughput_est, &keep);
        gather(&mut self.chunk_params, &keep);
        gather(&mut self.rng, &keep);
        gather(&mut self.dead, &keep);
        gather(&mut self.cold, &keep);
        self.dead_count = 0;
        self.keep = keep;
    }

    /// Eagerly remove the sessions flagged in `finished` (plus any
    /// older tombstones), preserving survivor order. Convenience for
    /// tests and callers that keep external state index-aligned every
    /// tick; the production path defers via [`ClientArena::needs_compaction`] /
    /// [`ClientArena::compact_stale`].
    pub fn compact(&mut self, finished: &[bool]) {
        debug_assert_eq!(finished.len(), self.len());
        for (i, &done) in finished.iter().enumerate() {
            if done && !self.dead[i] {
                self.dead[i] = true;
                self.dead_count += 1;
            }
        }
        let mut remap = Vec::new();
        self.compact_stale(&mut remap);
    }
}

/// Minimum RTT observed over the ticks `[start, now]`, answered from
/// the arena's monotone suffix-min stack: the last entry at or before
/// `start` covers it (the first entry is the global minimum and covers
/// any earlier start). `∞` when no tick has been recorded.
#[inline]
fn window_min_rtt(stack: &[(u64, f64)], start: u64) -> f64 {
    let idx = stack.partition_point(|&(t, _)| t <= start);
    if idx == 0 {
        stack.first().map_or(f64::INFINITY, |&(_, v)| v)
    } else {
        stack[idx - 1].1
    }
}

/// The borrows of slot `i` a session-finish needs — free functions
/// instead of `&mut self` methods so `step_all` can keep its columns
/// destructured into bounds-check-free slices.
struct FinishSlot<'a> {
    ticks_alive: u64,
    watched_s: f64,
    active_dl_s: f64,
    min_rtt_s: f64,
    bitrate: f64,
    seg_play_ticks: &'a mut u64,
    bytes: f64,
    retx_bytes: &'a mut f64,
    cold: &'a mut Cold,
}

/// Fold the current constant-bitrate segment into the time-weighted
/// products. Must run before the slot's bitrate changes and at session
/// end (mirrors `Client::fold_products`).
#[inline]
fn fold_products(seg_play_ticks: &mut u64, bitrate: f64, cold: &mut Cold, dt_s: f64) {
    if *seg_play_ticks > 0 {
        let t = *seg_play_ticks as f64 * dt_s;
        cold.bitrate_time_product += bitrate * t;
        cold.quality_time_product += perceptual_quality(bitrate) * t;
        *seg_play_ticks = 0;
    }
}

/// Build the session record for a finishing slot (mirrors
/// `Client::finish`).
fn finish_record(
    slot: FinishSlot<'_>,
    cfg: &StreamConfig,
    dt_s: f64,
    now_s: f64,
    cancelled: bool,
) -> SessionRecord {
    // Volume-independent retransmissions (connection upkeep, tail
    // losses), accrued once over the session's lifetime.
    *slot.retx_bytes += cfg.fixed_retx_bytes_per_s * dt_s * slot.ticks_alive as f64;
    fold_products(slot.seg_play_ticks, slot.bitrate, slot.cold, dt_s);
    // Play time == watched seconds (playback advances exactly while
    // playing), so no separate accumulator is needed.
    let play = slot.watched_s.max(1e-9);
    let c = slot.cold;
    SessionRecord {
        link: c.link,
        day: c.day,
        hour: c.hour,
        weekend: c.weekend,
        arrival_s: c.arrival_s,
        treated: c.treated,
        throughput_bps: if slot.active_dl_s > 0.0 {
            slot.bytes * 8.0 / slot.active_dl_s
        } else {
            0.0
        },
        min_rtt_s: if slot.min_rtt_s.is_finite() {
            slot.min_rtt_s
        } else {
            f64::NAN
        },
        play_delay_s: c.play_delay_s,
        bitrate_bps: if cancelled {
            f64::NAN
        } else {
            c.bitrate_time_product / play
        },
        quality: if cancelled {
            f64::NAN
        } else {
            c.quality_time_product / play
        },
        rebuffer_count: c.rebuffer_count,
        rebuffered: c.rebuffer_count > 0,
        cancelled,
        bytes: slot.bytes,
        retx_bytes: *slot.retx_bytes,
        switches: c.switches,
        duration_s: now_s - c.arrival_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AllocationSchedule;
    use crate::sim::LinkSim;

    fn cfg() -> StreamConfig {
        StreamConfig {
            access_median_bps: 20e6,
            access_sigma: 0.05,
            ..Default::default()
        }
    }

    fn make_client(c: &StreamConfig, ladder: &Ladder, seed: u64) -> Client {
        Client::new(
            c,
            ladder,
            LinkId::One,
            0,
            20,
            false,
            0.0,
            false,
            20e6,
            SimRng::new(seed),
        )
    }

    /// The arena must reproduce the scalar client bit-for-bit over a
    /// whole session lifetime, including the finish record. (The full
    /// randomized suite lives in `tests/arena_oracle.rs`.)
    #[test]
    fn matches_scalar_client_to_completion() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let scalar = make_client(&c, &ladder, 42);
        let mut arena = ClientArena::new();
        arena.push(&c, scalar.clone());
        let mut scalar = scalar;

        let mut records = Vec::new();
        let mut finished = Vec::new();
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += 1.0;
            let scalar_done = scalar.step(&c, &ladder, 20e6, 0.02, 0.0, t, 1.0);
            let any = arena.step_all(
                &c,
                &ladder,
                &[20e6],
                &[0],
                0.02,
                0.0,
                t,
                1.0,
                &mut records,
                &mut finished,
            );
            assert_eq!(scalar_done.is_some(), any);
            if let Some(rec) = scalar_done {
                let arec = records.pop().unwrap();
                assert_eq!(rec.bytes.to_bits(), arec.bytes.to_bits());
                assert_eq!(rec.throughput_bps.to_bits(), arec.throughput_bps.to_bits());
                assert_eq!(rec.bitrate_bps.to_bits(), arec.bitrate_bps.to_bits());
                assert_eq!(rec.quality.to_bits(), arec.quality.to_bits());
                assert_eq!(rec.retx_bytes.to_bits(), arec.retx_bytes.to_bits());
                assert_eq!(rec.duration_s.to_bits(), arec.duration_s.to_bits());
                assert_eq!(rec.rebuffer_count, arec.rebuffer_count);
                assert_eq!(rec.switches, arec.switches);
                assert_eq!(rec.cancelled, arec.cancelled);
                return;
            }
            // Demands agree every tick.
            assert_eq!(
                scalar.demand(&c).rate_bps.to_bits(),
                arena.demands()[0].to_bits()
            );
        }
        panic!("session never finished");
    }

    #[test]
    fn compact_preserves_survivor_order() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let mut arena = ClientArena::new();
        for seed in 0..5 {
            arena.push(&c, make_client(&c, &ladder, seed));
        }
        let accesses: Vec<f64> = arena.access_bps.clone();
        arena.compact(&[true, false, true, false, false]);
        assert_eq!(arena.len(), 3);
        assert_eq!(
            arena.access_bps,
            vec![accesses[1], accesses[3], accesses[4]]
        );
    }

    #[test]
    fn push_reports_startup_demand() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let client = make_client(&c, &ladder, 7);
        let expect = client.demand(&c).rate_bps;
        let mut arena = ClientArena::new();
        arena.push(&c, client);
        assert_eq!(arena.demands(), &[expect]);
        assert_eq!(arena.peak_demands(), &[expect]);
        let mut sim = LinkSim::new(c.clone(), LinkId::One, AllocationSchedule::none(), 1);
        sim.inject(make_client(&c, &ladder, 8));
        assert_eq!(sim.active_sessions(), 1);
    }
}
