//! Allocation schedules: how the treated fraction varies over time and
//! across links — the knob that distinguishes baseline weeks, A/B tests,
//! paired-link experiments, switchbacks and event studies.

/// A per-link schedule of treatment allocations.
#[derive(Debug, Clone)]
pub enum AllocationSchedule {
    /// A constant Bernoulli allocation for the whole run.
    Constant(f64),
    /// One allocation per simulation day (switchbacks, event studies);
    /// days beyond the list reuse the last entry.
    PerDay(Vec<f64>),
}

impl AllocationSchedule {
    /// No treatment at all (baseline / A-A weeks).
    pub fn none() -> AllocationSchedule {
        AllocationSchedule::Constant(0.0)
    }

    /// Allocation in force on `day`.
    pub fn allocation(&self, day: usize) -> f64 {
        match self {
            AllocationSchedule::Constant(p) => *p,
            AllocationSchedule::PerDay(ps) => {
                if ps.is_empty() {
                    0.0
                } else {
                    ps[day.min(ps.len() - 1)]
                }
            }
        }
    }

    /// Switchback schedule: treated days get allocation `p_hi`, control
    /// days `p_lo` (the paper recommends 90–99% rather than 100% so
    /// spillover stays estimable).
    pub fn switchback(plan: &[bool], p_hi: f64, p_lo: f64) -> AllocationSchedule {
        AllocationSchedule::PerDay(plan.iter().map(|&t| if t { p_hi } else { p_lo }).collect())
    }

    /// Event study: `p_lo` before `switch_day`, `p_hi` from it onward.
    pub fn event_study(days: usize, switch_day: usize, p_hi: f64, p_lo: f64) -> AllocationSchedule {
        AllocationSchedule::PerDay(
            (0..days)
                .map(|d| if d >= switch_day { p_hi } else { p_lo })
                .collect(),
        )
    }

    /// Gradual deployment: one allocation per stage, one stage per day.
    pub fn gradual(stages: &[f64]) -> AllocationSchedule {
        AllocationSchedule::PerDay(stages.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_day() {
        let s = AllocationSchedule::Constant(0.95);
        assert_eq!(s.allocation(0), 0.95);
        assert_eq!(s.allocation(100), 0.95);
    }

    #[test]
    fn per_day_clamps_to_last() {
        let s = AllocationSchedule::PerDay(vec![0.1, 0.5]);
        assert_eq!(s.allocation(0), 0.1);
        assert_eq!(s.allocation(1), 0.5);
        assert_eq!(s.allocation(9), 0.5);
    }

    #[test]
    fn switchback_maps_plan() {
        let s = AllocationSchedule::switchback(&[true, false, true], 0.95, 0.05);
        assert_eq!(s.allocation(0), 0.95);
        assert_eq!(s.allocation(1), 0.05);
        assert_eq!(s.allocation(2), 0.95);
    }

    #[test]
    fn event_study_switches_once() {
        let s = AllocationSchedule::event_study(5, 2, 0.95, 0.05);
        assert_eq!(s.allocation(0), 0.05);
        assert_eq!(s.allocation(1), 0.05);
        assert_eq!(s.allocation(2), 0.95);
        assert_eq!(s.allocation(4), 0.95);
    }

    #[test]
    fn none_is_zero_everywhere() {
        let s = AllocationSchedule::none();
        assert_eq!(s.allocation(3), 0.0);
    }
}
