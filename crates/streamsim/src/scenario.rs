//! Allocation schedules: how the treated fraction varies over time and
//! across links — the knob that distinguishes baseline weeks, A/B tests,
//! paired-link experiments, switchbacks and event studies.

/// A per-link schedule of treatment allocations.
#[derive(Debug, Clone)]
pub enum AllocationSchedule {
    /// A constant Bernoulli allocation for the whole run.
    Constant(f64),
    /// One allocation per simulation day (switchbacks, event studies);
    /// days beyond the list reuse the last entry.
    PerDay(Vec<f64>),
}

impl AllocationSchedule {
    /// No treatment at all (baseline / A-A weeks).
    pub fn none() -> AllocationSchedule {
        AllocationSchedule::Constant(0.0)
    }

    /// Check the schedule is usable: allocations must be finite
    /// probabilities, and a `PerDay` schedule must cover at least one
    /// day. An empty `PerDay` used to silently yield allocation 0.0
    /// forever — almost always a bug (a switchback plan that was never
    /// filled in), so the simulators reject it at construction.
    pub fn validate(&self) -> Result<(), &'static str> {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        match self {
            AllocationSchedule::Constant(p) => {
                if !ok(*p) {
                    return Err("constant allocation must be a probability in [0, 1]");
                }
            }
            AllocationSchedule::PerDay(ps) => {
                if ps.is_empty() {
                    return Err("per-day schedule is empty (would silently allocate 0.0 forever)");
                }
                if !ps.iter().all(|&p| ok(p)) {
                    return Err("per-day allocations must be probabilities in [0, 1]");
                }
            }
        }
        Ok(())
    }

    /// Allocation in force on `day`.
    pub fn allocation(&self, day: usize) -> f64 {
        match self {
            AllocationSchedule::Constant(p) => *p,
            AllocationSchedule::PerDay(ps) => {
                debug_assert!(!ps.is_empty(), "empty per-day schedule (see validate())");
                if ps.is_empty() {
                    0.0
                } else {
                    ps[day.min(ps.len() - 1)]
                }
            }
        }
    }

    /// Switchback schedule: treated days get allocation `p_hi`, control
    /// days `p_lo` (the paper recommends 90–99% rather than 100% so
    /// spillover stays estimable).
    pub fn switchback(plan: &[bool], p_hi: f64, p_lo: f64) -> AllocationSchedule {
        assert!(
            !plan.is_empty(),
            "switchback plan must cover at least one day"
        );
        AllocationSchedule::PerDay(plan.iter().map(|&t| if t { p_hi } else { p_lo }).collect())
    }

    /// Event study: `p_lo` before `switch_day`, `p_hi` from it onward.
    pub fn event_study(days: usize, switch_day: usize, p_hi: f64, p_lo: f64) -> AllocationSchedule {
        assert!(days > 0, "event study must cover at least one day");
        AllocationSchedule::PerDay(
            (0..days)
                .map(|d| if d >= switch_day { p_hi } else { p_lo })
                .collect(),
        )
    }

    /// Gradual deployment: one allocation per stage, one stage per day.
    pub fn gradual(stages: &[f64]) -> AllocationSchedule {
        assert!(
            !stages.is_empty(),
            "gradual deployment needs at least one stage"
        );
        AllocationSchedule::PerDay(stages.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_day() {
        let s = AllocationSchedule::Constant(0.95);
        assert_eq!(s.allocation(0), 0.95);
        assert_eq!(s.allocation(100), 0.95);
    }

    #[test]
    fn per_day_clamps_to_last() {
        let s = AllocationSchedule::PerDay(vec![0.1, 0.5]);
        assert_eq!(s.allocation(0), 0.1);
        assert_eq!(s.allocation(1), 0.5);
        assert_eq!(s.allocation(9), 0.5);
    }

    #[test]
    fn switchback_maps_plan() {
        let s = AllocationSchedule::switchback(&[true, false, true], 0.95, 0.05);
        assert_eq!(s.allocation(0), 0.95);
        assert_eq!(s.allocation(1), 0.05);
        assert_eq!(s.allocation(2), 0.95);
    }

    #[test]
    fn event_study_switches_once() {
        let s = AllocationSchedule::event_study(5, 2, 0.95, 0.05);
        assert_eq!(s.allocation(0), 0.05);
        assert_eq!(s.allocation(1), 0.05);
        assert_eq!(s.allocation(2), 0.95);
        assert_eq!(s.allocation(4), 0.95);
    }

    #[test]
    fn none_is_zero_everywhere() {
        let s = AllocationSchedule::none();
        assert_eq!(s.allocation(3), 0.0);
    }

    #[test]
    fn validate_accepts_working_schedules() {
        assert!(AllocationSchedule::none().validate().is_ok());
        assert!(AllocationSchedule::Constant(0.95).validate().is_ok());
        assert!(AllocationSchedule::PerDay(vec![0.1, 0.9])
            .validate()
            .is_ok());
        assert!(AllocationSchedule::switchback(&[true, false], 0.95, 0.05)
            .validate()
            .is_ok());
    }

    /// Regression: `PerDay(vec![])` used to silently allocate 0.0 on
    /// every day; it must now fail validation (and the simulators panic
    /// at construction — see `sim::tests::empty_per_day_schedule_rejected`).
    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        assert!(AllocationSchedule::PerDay(vec![]).validate().is_err());
        assert!(AllocationSchedule::Constant(1.5).validate().is_err());
        assert!(AllocationSchedule::Constant(f64::NAN).validate().is_err());
        assert!(AllocationSchedule::PerDay(vec![0.5, -0.1])
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "switchback plan must cover at least one day")]
    fn empty_switchback_plan_panics() {
        let _ = AllocationSchedule::switchback(&[], 0.95, 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_gradual_panics() {
        let _ = AllocationSchedule::gradual(&[]);
    }
}
