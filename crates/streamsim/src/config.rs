//! Configuration for the streaming simulation.

/// All tunables of one streaming-link world.
///
/// Defaults are scaled down from the paper's 100 Gb/s peering links to a
/// 1 Gb/s link with a few hundred concurrent sessions at peak — the same
/// congestion regime at laptop cost.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Link capacity in bits per second.
    pub capacity_bps: f64,
    /// Base (uncongested) round-trip time in seconds.
    pub base_rtt_s: f64,
    /// Bottleneck buffer, expressed in seconds of queueing at capacity
    /// (a full queue adds this much delay to every RTT).
    pub queue_capacity_s: f64,
    /// Simulation tick in seconds.
    pub dt_s: f64,
    /// Number of simulated days.
    pub days: usize,
    /// Mean session arrival rate at the *daily peak*, sessions/second.
    pub peak_arrivals_per_s: f64,
    /// Bitrate ladder in bits/second, ascending.
    pub ladder_bps: Vec<f64>,
    /// Cap applied to treated (bitrate-capped) sessions, bits/second.
    pub cap_bps: f64,
    /// Hard per-session transport ceiling (server/TCP limit).
    pub session_max_bps: f64,
    /// Median of the per-session access-line limit (last mile), bits/s.
    /// Offered load scales with video bitrate because sessions duty-cycle
    /// between filling at their access rate and idling on a full buffer.
    pub access_median_bps: f64,
    /// Log-scale sigma of the access-line limit distribution.
    pub access_sigma: f64,
    /// Client playback buffer target in seconds of video.
    pub max_buffer_s: f64,
    /// Seconds of video required to start playback.
    pub startup_buffer_s: f64,
    /// Seconds of video required to resume after a rebuffer.
    pub resume_buffer_s: f64,
    /// Mean video watch duration in seconds.
    pub mean_watch_s: f64,
    /// Mean user patience for startup in seconds (cancelled starts).
    pub mean_patience_s: f64,
    /// ABR safety factor: pick the highest rung ≤ factor × estimate.
    pub abr_safety: f64,
    /// Chunk length in seconds of video (ABR decision interval).
    pub chunk_s: f64,
    /// Log-scale sigma of per-chunk throughput noise (last-mile and
    /// cross-traffic variability; also drives rebuffer incidence).
    pub throughput_noise_sigma: f64,
    /// Baseline loss fraction on the rest of the path (volume-
    /// proportional retransmissions).
    pub loss_floor: f64,
    /// Fraction of shed (overload) demand that manifests as
    /// retransmissions: TCP backs off instead of blasting, so the
    /// realized loss rate is far below the shed fraction.
    pub loss_to_retx: f64,
    /// Volume-independent retransmitted bytes per active second
    /// (connection upkeep, tail losses): this is what makes the
    /// *percentage* of retransmitted bytes rise when capping shrinks the
    /// denominator off-peak (§4.3, Figure 9).
    pub fixed_retx_bytes_per_s: f64,
    /// Probability per chunk of a "difficulty dip" (a transient
    /// throughput collapse from content/CDN effects) — the driver of
    /// rebuffers that is unrelated to this link's congestion.
    pub dip_prob: f64,
    /// Multiplier (>1 worsens) on the dip probability, per link —
    /// models the link-1 content-mix quirk of §4.1 with negligible
    /// impact on mean throughput.
    pub rebuffer_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            capacity_bps: 1e9,
            base_rtt_s: 0.020,
            queue_capacity_s: 0.025,
            dt_s: 1.0,
            days: 5,
            peak_arrivals_per_s: 0.24,
            ladder_bps: vec![
                235e3, 375e3, 560e3, 750e3, 1_050e3, 1_750e3, 2_350e3, 3_000e3, 4_300e3, 5_800e3,
            ],
            cap_bps: 1_750e3,
            session_max_bps: 25e6,
            access_median_bps: 5e6,
            access_sigma: 0.5,
            max_buffer_s: 120.0,
            startup_buffer_s: 4.0,
            resume_buffer_s: 4.0,
            mean_watch_s: 1500.0,
            mean_patience_s: 20.0,
            abr_safety: 0.8,
            chunk_s: 4.0,
            throughput_noise_sigma: 0.30,
            loss_floor: 0.002,
            loss_to_retx: 0.06,
            fixed_retx_bytes_per_s: 1500.0,
            dip_prob: 0.005,
            rebuffer_bias: 1.0,
            seed: 1,
        }
    }
}

/// Errors from validating a [`StreamConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfigError {
    /// Offending field.
    pub field: &'static str,
}

impl std::fmt::Display for StreamConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream config field out of range: {}", self.field)
    }
}

impl std::error::Error for StreamConfigError {}

impl StreamConfig {
    /// Validate all fields.
    pub fn validate(&self) -> Result<(), StreamConfigError> {
        let positive = [
            ("capacity_bps", self.capacity_bps),
            ("base_rtt_s", self.base_rtt_s),
            ("dt_s", self.dt_s),
            ("peak_arrivals_per_s", self.peak_arrivals_per_s),
            ("cap_bps", self.cap_bps),
            ("session_max_bps", self.session_max_bps),
            ("access_median_bps", self.access_median_bps),
            ("max_buffer_s", self.max_buffer_s),
            ("startup_buffer_s", self.startup_buffer_s),
            ("mean_watch_s", self.mean_watch_s),
            ("mean_patience_s", self.mean_patience_s),
            ("abr_safety", self.abr_safety),
            ("chunk_s", self.chunk_s),
            ("rebuffer_bias", self.rebuffer_bias),
        ];
        for (name, v) in positive {
            if v <= 0.0 || !v.is_finite() {
                return Err(StreamConfigError { field: name });
            }
        }
        if self.days == 0 {
            return Err(StreamConfigError { field: "days" });
        }
        if self.ladder_bps.is_empty() || self.ladder_bps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StreamConfigError {
                field: "ladder_bps",
            });
        }
        if self.queue_capacity_s < 0.0 {
            return Err(StreamConfigError {
                field: "queue_capacity_s",
            });
        }
        if !(0.0..0.5).contains(&self.loss_floor) {
            return Err(StreamConfigError {
                field: "loss_floor",
            });
        }
        if self.throughput_noise_sigma < 0.0 || self.fixed_retx_bytes_per_s < 0.0 {
            return Err(StreamConfigError {
                field: "noise/retx",
            });
        }
        if !(0.0..1.0).contains(&self.dip_prob) {
            return Err(StreamConfigError { field: "dip_prob" });
        }
        Ok(())
    }

    /// Total simulated seconds.
    pub fn horizon_s(&self) -> f64 {
        self.days as f64 * 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_fields() {
        let c = StreamConfig {
            capacity_bps: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = StreamConfig {
            days: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        // Ladder must be ascending.
        let c = StreamConfig {
            ladder_bps: vec![2e6, 1e6],
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = StreamConfig {
            loss_floor: 0.9,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn horizon_math() {
        let c = StreamConfig {
            days: 5,
            ..Default::default()
        };
        assert_eq!(c.horizon_s(), 432_000.0);
    }
}
