//! Adaptive-bitrate selection and perceptual quality.

/// The bitrate ladder plus the capping treatment.
#[derive(Debug, Clone)]
pub struct Ladder {
    rates: Vec<f64>,
}

impl Ladder {
    /// Build from ascending rates in bits/second.
    pub fn new(rates: Vec<f64>) -> Ladder {
        debug_assert!(rates.windows(2).all(|w| w[0] < w[1]), "ladder must ascend");
        Ladder { rates }
    }

    /// Lowest rung.
    pub fn min_rate(&self) -> f64 {
        self.rates[0]
    }

    /// The rungs, ascending.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of rungs at or below `ceiling` — the permitted prefix for
    /// a capped session (the ladder ascends, so a cap truncates to a
    /// prefix).
    pub fn permitted_rungs(&self, ceiling: f64) -> usize {
        Ladder::permitted_rungs_in(&self.rates, ceiling)
    }

    /// [`Ladder::permitted_rungs`] over a raw ascending rate slice, for
    /// callers that hold the configured ladder rates but no `Ladder`.
    pub(crate) fn permitted_rungs_in(rates: &[f64], ceiling: f64) -> usize {
        rates.partition_point(|&r| r <= ceiling)
    }

    /// [`Ladder::select`] restricted to the first `permitted` rungs:
    /// with `permitted = permitted_rungs(cap)` this returns exactly
    /// `select(est, safety, Some(cap))`, but sessions with a constant
    /// cap can precompute the prefix once and skip the per-rung ceiling
    /// comparisons (and the dead rungs above the cap) on every chunk.
    #[inline]
    pub fn select_from_top(&self, permitted: usize, throughput_est_bps: f64, safety: f64) -> f64 {
        let budget = throughput_est_bps * safety;
        for &r in self.rates[..permitted].iter().rev() {
            if r <= budget {
                return r;
            }
        }
        // Must stream something: the lowest permitted rung, or the
        // ladder floor when the cap sits below the whole ladder.
        self.rates[0]
    }

    /// Highest rung (uncapped).
    pub fn max_rate(&self) -> f64 {
        *self.rates.last().expect("ladder is non-empty")
    }

    /// Throughput-based selection: the highest rung not exceeding
    /// `safety × estimate`, truncated at `cap` when the session is
    /// bitrate-capped. Falls back to the lowest rung.
    ///
    /// Runs once per chunk for every active session, so it is written
    /// as a single reverse scan (estimates usually land in the upper
    /// half of the ladder) instead of a filter/rfind chain.
    #[inline]
    pub fn select(&self, throughput_est_bps: f64, safety: f64, cap: Option<f64>) -> f64 {
        let budget = throughput_est_bps * safety;
        let ceiling = cap.unwrap_or(f64::INFINITY);
        let mut fallback = None;
        for &r in self.rates.iter().rev() {
            if r <= ceiling {
                if r <= budget {
                    return r; // highest rung within cap and budget
                }
                // Tracks the lowest capped rung seen so far: must stream
                // something even when the budget affords no rung.
                fallback = Some(r);
            }
        }
        fallback.unwrap_or(self.min_rate())
    }
}

/// Perceptual quality on a 0–100 scale, concave in bitrate (VMAF-like
/// saturating curve): `q = 100 · b/(b + b_half)`.
pub fn perceptual_quality(bitrate_bps: f64) -> f64 {
    const B_HALF: f64 = 900e3;
    100.0 * bitrate_bps / (bitrate_bps + B_HALF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Ladder {
        Ladder::new(vec![235e3, 750e3, 1_750e3, 3_000e3, 5_800e3])
    }

    #[test]
    fn selects_highest_affordable() {
        let l = ladder();
        assert_eq!(l.select(10e6, 0.8, None), 5_800e3);
        assert_eq!(l.select(4e6, 0.8, None), 3_000e3); // 3.2M budget
        assert_eq!(l.select(1e6, 0.8, None), 750e3);
    }

    #[test]
    fn falls_back_to_lowest() {
        let l = ladder();
        assert_eq!(l.select(100e3, 0.8, None), 235e3);
    }

    #[test]
    fn cap_truncates_ladder() {
        let l = ladder();
        assert_eq!(l.select(10e6, 0.8, Some(1_750e3)), 1_750e3);
        assert_eq!(l.select(1e6, 0.8, Some(1_750e3)), 750e3);
        // Cap below the whole ladder still returns something playable.
        assert_eq!(l.select(10e6, 0.8, Some(100e3)), 235e3);
    }

    #[test]
    fn quality_concave_and_bounded() {
        let q1 = perceptual_quality(235e3);
        let q2 = perceptual_quality(1_750e3);
        let q3 = perceptual_quality(5_800e3);
        assert!(q1 < q2 && q2 < q3);
        assert!(q3 < 100.0);
        // Diminishing returns: the second step gains less per bit.
        let gain_low = (q2 - q1) / (1_750e3 - 235e3);
        let gain_high = (q3 - q2) / (5_800e3 - 1_750e3);
        assert!(gain_low > gain_high);
    }

    #[test]
    fn capping_costs_quality_but_less_than_proportional() {
        // 1750 kb/s vs 5800 kb/s: ~3.3x the bits, but quality drops by
        // far less than 3.3x — the premise of the capping program.
        let q_cap = perceptual_quality(1_750e3);
        let q_full = perceptual_quality(5_800e3);
        assert!(q_cap / q_full > 0.6);
    }
}
