//! The fluid bottleneck link: max–min bandwidth sharing, a standing
//! queue that inflates RTT, and loss when demand exceeds capacity.
//!
//! This is the deliberately coarse counterpart of `netsim`'s packet
//! model: at 100 Gb/s and millions of sessions, per-packet simulation is
//! not feasible or necessary. What must be preserved — and is — is the
//! *coupling*: every session's RTT and loss depend on the aggregate
//! offered load, so changing some sessions' bitrates changes everyone's
//! network conditions (congestion interference).

/// Fluid link state.
#[derive(Debug, Clone)]
pub struct FluidLink {
    /// Capacity in bits/second.
    capacity_bps: f64,
    /// Base RTT in seconds.
    base_rtt_s: f64,
    /// Queue capacity expressed in seconds of draining at capacity.
    queue_capacity_s: f64,
    /// Current queue depth in "seconds of capacity".
    queue_s: f64,
    /// Current loss fraction (recomputed each tick from overload).
    loss: f64,
    /// Utilization in the last tick.
    utilization: f64,
}

impl FluidLink {
    /// New, initially idle link.
    pub fn new(capacity_bps: f64, base_rtt_s: f64, queue_capacity_s: f64) -> FluidLink {
        FluidLink {
            capacity_bps,
            base_rtt_s,
            queue_capacity_s,
            queue_s: 0.0,
            loss: 0.0,
            utilization: 0.0,
        }
    }

    /// Capacity in bits/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Current RTT (base plus standing-queue delay), seconds.
    pub fn rtt_s(&self) -> f64 {
        self.base_rtt_s + self.queue_s
    }

    /// Current loss fraction from overload.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Utilization of the previous tick (0–1).
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Whether a standing queue is present (operational congestion).
    pub fn congested(&self) -> bool {
        self.queue_s > 0.25 * self.queue_capacity_s
    }

    /// Allocate bandwidth for one tick.
    ///
    /// `demands` are per-session desired rates (bits/s); the result is
    /// the per-session allocation under max–min fairness with demand
    /// caps. Queue and loss states advance as a side effect.
    pub fn allocate(&mut self, demands: &[f64], dt_s: f64) -> Vec<f64> {
        let total: f64 = demands.iter().sum();
        let shares = max_min_share(demands, self.capacity_bps);
        let served: f64 = shares.iter().sum();
        self.utilization = served / self.capacity_bps;

        // Queue dynamics: unserved demand accumulates (TCP keeps pushing),
        // bounded by the buffer; slack drains it.
        let overload_bps = total - served;
        self.queue_s += overload_bps / self.capacity_bps * dt_s;
        let slack_bps = self.capacity_bps - served;
        self.queue_s -= slack_bps / self.capacity_bps * dt_s;
        self.queue_s = self.queue_s.clamp(0.0, self.queue_capacity_s);

        // Loss: only once the buffer is (nearly) full does the excess
        // demand turn into drops, shed proportionally.
        self.loss = if total > 0.0 && self.queue_s >= 0.95 * self.queue_capacity_s {
            (overload_bps / total).clamp(0.0, 0.5)
        } else {
            0.0
        };
        shares
    }
}

/// Max–min fair shares with per-session demand caps: sessions demanding
/// less than the fair share keep their demand; the remainder is split among
/// the rest (water-filling).
pub fn max_min_share(demands: &[f64], capacity: f64) -> Vec<f64> {
    let n = demands.len();
    let mut shares = vec![0.0; n];
    if n == 0 {
        return shares;
    }
    let mut remaining = capacity;
    let mut unsatisfied: Vec<usize> = (0..n).collect();
    // Water-filling: at most O(n log n) via sorting by demand.
    unsatisfied.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("NaN demand"));
    let mut idx = 0;
    while idx < unsatisfied.len() {
        let left = unsatisfied.len() - idx;
        let fair = remaining / left as f64;
        let i = unsatisfied[idx];
        if demands[i] <= fair {
            shares[i] = demands[i];
            remaining -= demands[i];
            idx += 1;
        } else {
            // Everyone remaining demands more than the fair share.
            for &j in &unsatisfied[idx..] {
                shares[j] = fair;
            }
            return shares;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_satisfies_small_demands_first() {
        let shares = max_min_share(&[1.0, 10.0, 10.0], 12.0);
        assert!((shares[0] - 1.0).abs() < 1e-12);
        assert!((shares[1] - 5.5).abs() < 1e-12);
        assert!((shares[2] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn max_min_uncongested_gives_demands() {
        let shares = max_min_share(&[1.0, 2.0, 3.0], 100.0);
        assert_eq!(shares, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_min_conserves_capacity() {
        let demands = [5.0, 9.0, 2.0, 14.0, 7.0];
        let shares = max_min_share(&demands, 20.0);
        let total: f64 = shares.iter().sum();
        assert!(total <= 20.0 + 1e-9);
        assert!(shares.iter().zip(&demands).all(|(s, d)| s <= d));
    }

    #[test]
    fn queue_builds_under_overload_and_drains_after() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        // Overload: demand 150 vs capacity 100.
        for _ in 0..100 {
            link.allocate(&[150.0], 1.0);
        }
        assert!(link.rtt_s() > 0.06, "rtt {}", link.rtt_s());
        assert!(link.loss() > 0.0, "loss {}", link.loss());
        assert!(link.congested());
        // Light load drains the queue and clears loss.
        for _ in 0..100 {
            link.allocate(&[10.0], 1.0);
        }
        assert!((link.rtt_s() - 0.02).abs() < 1e-9);
        assert_eq!(link.loss(), 0.0);
        assert!(!link.congested());
    }

    #[test]
    fn loss_proportional_to_overload() {
        let mut link = FluidLink::new(100.0, 0.02, 0.01);
        for _ in 0..50 {
            link.allocate(&[200.0], 1.0);
        }
        // Overload 100 of 200 demanded => ~50% shed, clamped at 0.5.
        assert!((link.loss() - 0.5).abs() < 1e-9);
        let mut mild = FluidLink::new(100.0, 0.02, 0.01);
        for _ in 0..50 {
            mild.allocate(&[120.0, 5.0], 1.0);
        }
        assert!(
            mild.loss() > 0.0 && mild.loss() < 0.25,
            "loss {}",
            mild.loss()
        );
    }

    #[test]
    fn utilization_tracks_service() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        link.allocate(&[30.0, 20.0], 1.0);
        assert!((link.utilization() - 0.5).abs() < 1e-12);
        link.allocate(&[300.0], 1.0);
        assert!((link.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_demands_ok() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        let shares = link.allocate(&[], 1.0);
        assert!(shares.is_empty());
        assert_eq!(link.utilization(), 0.0);
    }
}
