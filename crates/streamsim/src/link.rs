//! The fluid bottleneck link: max–min bandwidth sharing, a standing
//! queue that inflates RTT, and loss when demand exceeds capacity.
//!
//! This is the deliberately coarse counterpart of `netsim`'s packet
//! model: at 100 Gb/s and millions of sessions, per-packet simulation is
//! not feasible or necessary. What must be preserved — and is — is the
//! *coupling*: every session's RTT and loss depend on the aggregate
//! offered load, so changing some sessions' bitrates changes everyone's
//! network conditions (congestion interference).

/// Fluid link state.
#[derive(Debug, Clone)]
pub struct FluidLink {
    /// Capacity in bits/second.
    capacity_bps: f64,
    /// Base RTT in seconds.
    base_rtt_s: f64,
    /// Queue capacity expressed in seconds of draining at capacity.
    queue_capacity_s: f64,
    /// Current queue depth in "seconds of capacity".
    queue_s: f64,
    /// Current loss fraction (recomputed each tick from overload).
    loss: f64,
    /// Utilization in the last tick.
    utilization: f64,
    /// Reusable sort permutation for [`FluidLink::allocate_into`].
    /// Demands change slowly between ticks, so repairing last tick's
    /// order is amortized O(n) instead of an O(n log n) sort.
    order: Vec<usize>,
}

impl FluidLink {
    /// New, initially idle link.
    pub fn new(capacity_bps: f64, base_rtt_s: f64, queue_capacity_s: f64) -> FluidLink {
        FluidLink {
            capacity_bps,
            base_rtt_s,
            queue_capacity_s,
            queue_s: 0.0,
            loss: 0.0,
            utilization: 0.0,
            order: Vec::new(),
        }
    }

    /// Capacity in bits/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Current RTT (base plus standing-queue delay), seconds.
    pub fn rtt_s(&self) -> f64 {
        self.base_rtt_s + self.queue_s
    }

    /// Current loss fraction from overload.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Utilization of the previous tick (0–1).
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Whether a standing queue is present (operational congestion).
    pub fn congested(&self) -> bool {
        self.queue_s > 0.25 * self.queue_capacity_s
    }

    /// Current queue depth (seconds of draining at capacity).
    pub fn queue_depth_s(&self) -> f64 {
        self.queue_s
    }

    /// Aggregate demand below which one tick of this link is *exactly*
    /// the identity allocation, bitwise — the invariant the hybrid
    /// event engine's decoupled spans rest on. When the queue is empty
    /// (`queue_depth_s() == 0.0`) and total demand stays at or below
    /// this bound:
    ///
    /// - water-filling serves every session exactly its demand (each
    ///   ascending-order demand is below the running fair share, with
    ///   the 1e-6 relative margin dominating the f64 summation error of
    ///   any realistic population), and its `total`/`served`
    ///   accumulators — the same adds in the same order — are equal
    ///   bitwise;
    /// - hence `overload == 0.0` exactly, the queue update adds `0.0`,
    ///   subtracts a non-negative slack term and clamps at `0.0`, so
    ///   the queue stays exactly empty;
    /// - hence `loss == 0.0` and `rtt_s() == base + 0.0 == base`,
    ///   bitwise (IEEE-754: `x + 0.0 == x` for finite `x`).
    ///
    /// The factors a session multiplies by — `1 - loss == 1.0` and the
    /// share itself — are therefore bit-identical to a tick where the
    /// session was allocated alone, which is what lets the event engine
    /// replay sessions independently between allocation-changing events.
    pub fn decoupled_fit_bound_bps(&self) -> f64 {
        self.capacity_bps * (1.0 - 1e-6)
    }

    /// Allocate bandwidth for one tick.
    ///
    /// `demands` are per-session desired rates (bits/s); the result is
    /// the per-session allocation under max–min fairness with demand
    /// caps. Queue and loss states advance as a side effect.
    ///
    /// Convenience wrapper over [`FluidLink::allocate_into`] that
    /// allocates a fresh output vector.
    pub fn allocate(&mut self, demands: &[f64], dt_s: f64) -> Vec<f64> {
        let mut shares = Vec::with_capacity(demands.len());
        self.allocate_into(demands, dt_s, &mut shares);
        shares
    }

    /// [`FluidLink::allocate`] writing into a caller-provided buffer.
    ///
    /// Reuses the link's internal sort permutation between calls, so
    /// steady-state ticks (stable population, slowly changing demands)
    /// perform zero heap allocations and amortized O(n) work.
    pub fn allocate_into(&mut self, demands: &[f64], dt_s: f64, out: &mut Vec<f64>) {
        // The permutation is taken out of `self` for the duration of the
        // call so `allocate_ordered` can borrow it alongside `&mut self`.
        let mut order = std::mem::take(&mut self.order);
        repair_order(&mut order, demands);
        self.allocate_ordered(demands, &order, dt_s, out);
        self.order = order;
    }

    /// [`FluidLink::allocate_into`] with a caller-maintained sort
    /// permutation. `order` lists the sessions to water-fill, ascending
    /// by demand; sessions *not* listed must have zero demand and
    /// receive a zero share (water-filling zeros is a no-op, so callers
    /// with on-off traffic can list only the active sessions). This is
    /// the zero-allocation hot path used by `LinkSim`, whose client
    /// indices shift on session exit in a way only the caller can remap.
    pub fn allocate_ordered(
        &mut self,
        demands: &[f64],
        order: &[usize],
        dt_s: f64,
        out: &mut Vec<f64>,
    ) {
        debug_check_demands(demands);
        debug_assert!(
            order.windows(2).all(|w| demands[w[0]] <= demands[w[1]]),
            "order must sort demands ascending"
        );
        debug_assert!(
            {
                let mut listed = vec![false; demands.len()];
                order.iter().for_each(|&i| listed[i] = true);
                demands
                    .iter()
                    .zip(&listed)
                    .all(|(&d, &in_order)| in_order || d == 0.0)
            },
            "sessions omitted from order must have zero demand"
        );
        let (total, served) = water_fill(demands, order, self.capacity_bps, out);
        self.utilization = served / self.capacity_bps;

        // Queue dynamics: unserved demand accumulates (TCP keeps pushing),
        // bounded by the buffer; slack drains it.
        let overload_bps = total - served;
        self.queue_s += overload_bps / self.capacity_bps * dt_s;
        let slack_bps = self.capacity_bps - served;
        self.queue_s -= slack_bps / self.capacity_bps * dt_s;
        self.queue_s = self.queue_s.clamp(0.0, self.queue_capacity_s);

        // Loss: only once the buffer is (nearly) full does the excess
        // demand turn into drops, shed proportionally.
        self.loss = if total > 0.0 && self.queue_s >= 0.95 * self.queue_capacity_s {
            (overload_bps / total).clamp(0.0, 0.5)
        } else {
            0.0
        };
    }
}

/// Demands must be finite and non-negative; checked at the API boundary
/// in debug builds so NaNs fail fast instead of silently mis-sorting.
#[inline]
fn debug_check_demands(demands: &[f64]) {
    debug_assert!(
        demands.iter().all(|d| d.is_finite() && *d >= 0.0),
        "demands must be finite and non-negative"
    );
}

/// Restore the invariant that `order` is a permutation of
/// `0..demands.len()` sorting `demands` ascending.
///
/// Uses a stable insertion sort, which is O(n + inversions): when the
/// permutation is carried over from the previous tick (demands change
/// slowly — arrivals are appended, a few sessions toggle between their
/// access rate and idle) this is amortized O(n) instead of a full
/// O(n log n) sort. If `order` has the wrong length (first call, or a
/// caller that does not maintain it) it is reset to the identity first.
pub fn repair_order(order: &mut Vec<usize>, demands: &[f64]) {
    let n = demands.len();
    if order.len() != n {
        order.clear();
        order.extend(0..n);
    }
    debug_assert!(
        {
            let mut seen = vec![false; n];
            order
                .iter()
                .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
        },
        "order must be a permutation of 0..{n}"
    );
    for k in 1..n {
        let idx = order[k];
        let key = demands[idx];
        let mut j = k;
        while j > 0 && demands[order[j - 1]].total_cmp(&key).is_gt() {
            order[j] = order[j - 1];
            j -= 1;
        }
        order[j] = idx;
    }
}

/// Water-filling kernel: visit the sessions listed in `order` (ascending
/// by demand; unlisted sessions must demand zero and get zero); sessions
/// demanding less than the running fair share keep their demand, the
/// remainder is split evenly among the rest. Returns `(total demand,
/// total served)`, accumulated in visit order, so callers need no extra
/// reduction passes.
fn water_fill(demands: &[f64], order: &[usize], capacity: f64, out: &mut Vec<f64>) -> (f64, f64) {
    out.clear();
    out.resize(demands.len(), 0.0);
    let k = order.len();
    let mut remaining = capacity;
    let mut total = 0.0;
    let mut served = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        let d = demands[i];
        let fair = remaining / (k - rank) as f64;
        if d <= fair {
            out[i] = d;
            remaining -= d;
            total += d;
            served += d;
        } else {
            // Everyone remaining demands more than the fair share.
            for &j in &order[rank..] {
                out[j] = fair;
                total += demands[j];
                served += fair;
            }
            break;
        }
    }
    (total, served)
}

/// Max–min fair shares with per-session demand caps: sessions demanding
/// less than the fair share keep their demand; the remainder is split among
/// the rest (water-filling).
///
/// This is the allocating reference implementation; the hot path
/// ([`FluidLink::allocate_into`] / [`FluidLink::allocate_ordered`]) is
/// property-tested to be bit-identical to it.
pub fn max_min_share(demands: &[f64], capacity: f64) -> Vec<f64> {
    debug_check_demands(demands);
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[a].total_cmp(&demands[b]));
    let mut shares = Vec::with_capacity(demands.len());
    water_fill(demands, &order, capacity, &mut shares);
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_satisfies_small_demands_first() {
        let shares = max_min_share(&[1.0, 10.0, 10.0], 12.0);
        assert!((shares[0] - 1.0).abs() < 1e-12);
        assert!((shares[1] - 5.5).abs() < 1e-12);
        assert!((shares[2] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn max_min_uncongested_gives_demands() {
        let shares = max_min_share(&[1.0, 2.0, 3.0], 100.0);
        assert_eq!(shares, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_min_conserves_capacity() {
        let demands = [5.0, 9.0, 2.0, 14.0, 7.0];
        let shares = max_min_share(&demands, 20.0);
        let total: f64 = shares.iter().sum();
        assert!(total <= 20.0 + 1e-9);
        assert!(shares.iter().zip(&demands).all(|(s, d)| s <= d));
    }

    #[test]
    fn queue_builds_under_overload_and_drains_after() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        // Overload: demand 150 vs capacity 100.
        for _ in 0..100 {
            link.allocate(&[150.0], 1.0);
        }
        assert!(link.rtt_s() > 0.06, "rtt {}", link.rtt_s());
        assert!(link.loss() > 0.0, "loss {}", link.loss());
        assert!(link.congested());
        // Light load drains the queue and clears loss.
        for _ in 0..100 {
            link.allocate(&[10.0], 1.0);
        }
        assert!((link.rtt_s() - 0.02).abs() < 1e-9);
        assert_eq!(link.loss(), 0.0);
        assert!(!link.congested());
    }

    #[test]
    fn loss_proportional_to_overload() {
        let mut link = FluidLink::new(100.0, 0.02, 0.01);
        for _ in 0..50 {
            link.allocate(&[200.0], 1.0);
        }
        // Overload 100 of 200 demanded => ~50% shed, clamped at 0.5.
        assert!((link.loss() - 0.5).abs() < 1e-9);
        let mut mild = FluidLink::new(100.0, 0.02, 0.01);
        for _ in 0..50 {
            mild.allocate(&[120.0, 5.0], 1.0);
        }
        assert!(
            mild.loss() > 0.0 && mild.loss() < 0.25,
            "loss {}",
            mild.loss()
        );
    }

    #[test]
    fn utilization_tracks_service() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        link.allocate(&[30.0, 20.0], 1.0);
        assert!((link.utilization() - 0.5).abs() < 1e-12);
        link.allocate(&[300.0], 1.0);
        assert!((link.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_demands_ok() {
        let mut link = FluidLink::new(100.0, 0.02, 0.05);
        let shares = link.allocate(&[], 1.0);
        assert!(shares.is_empty());
        assert_eq!(link.utilization(), 0.0);
    }

    #[test]
    fn repair_order_sorts_and_resets() {
        let demands = [5.0, 1.0, 3.0, 3.0, 0.0];
        // Wrong length: reset to identity, then sorted.
        let mut order = vec![0, 1];
        repair_order(&mut order, &demands);
        assert_eq!(order, vec![4, 1, 2, 3, 0]); // stable on the 3.0 tie
                                                // Already sorted: untouched.
        let before = order.clone();
        repair_order(&mut order, &demands);
        assert_eq!(order, before);
        // A single perturbed entry is re-inserted.
        let demands = [5.0, 1.0, 3.0, 0.5, 0.0];
        repair_order(&mut order, &demands);
        assert_eq!(order, vec![4, 3, 1, 2, 0]);
    }

    #[test]
    fn allocate_into_reuses_buffers_and_matches_reference() {
        let mut link = FluidLink::new(20.0, 0.02, 0.05);
        let mut out = Vec::new();
        // Population changes across calls: grow, shrink, mutate.
        let sequences: [&[f64]; 5] = [
            &[1.0, 10.0, 10.0],
            &[1.0, 10.0, 10.0, 4.0],
            &[12.0, 3.0],
            &[],
            &[7.0, 7.0, 7.0, 7.0, 7.0],
        ];
        for demands in sequences {
            link.allocate_into(demands, 1.0, &mut out);
            let reference = max_min_share(demands, 20.0);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&reference), "demands {demands:?}");
        }
    }

    #[test]
    fn allocate_ordered_accepts_active_subset() {
        // Idle (zero-demand) sessions may be omitted from the order —
        // the LinkSim hot path lists only active sessions. Shares must
        // be bit-identical to the full reference either way.
        let demands = [0.0, 7.0, 0.0, 3.0, 9.0, 0.0];
        let order = [3usize, 1, 4]; // actives ascending
        let mut link = FluidLink::new(12.0, 0.02, 0.05);
        let mut out = Vec::new();
        link.allocate_ordered(&demands, &order, 1.0, &mut out);
        let reference = max_min_share(&demands, 12.0);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out), bits(&reference));
        assert_eq!(out[0], 0.0);
        assert_eq!(out[3], 3.0);
    }

    #[test]
    fn allocate_and_allocate_into_share_queue_dynamics() {
        let mut a = FluidLink::new(100.0, 0.02, 0.05);
        let mut b = FluidLink::new(100.0, 0.02, 0.05);
        let mut out = Vec::new();
        for _ in 0..100 {
            let shares = a.allocate(&[150.0, 20.0], 1.0);
            b.allocate_into(&[150.0, 20.0], 1.0, &mut out);
            assert_eq!(shares, out);
            assert_eq!(a.rtt_s().to_bits(), b.rtt_s().to_bits());
            assert_eq!(a.loss().to_bits(), b.loss().to_bits());
        }
    }
}
