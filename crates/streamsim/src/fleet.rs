//! The fleet layer: N heterogeneous congested links under one
//! experiment.
//!
//! The paper's designs are defined over a *population* of links — its
//! switchbacks, paired links, and cross-link aggregation all assume many
//! heterogeneous bottlenecks running at once — while [`crate::sim::LinkSim`]
//! models exactly one. This module scales the same allocation-free tick
//! pipeline out to a fleet:
//!
//! * [`LinkPopulation`] is a seeded distribution model over link
//!   parameters (capacity, base RTT, client count, per-client demand),
//!   sampled once into a vector of [`LinkSpec`]s — the fixed "plant"
//!   the experiment runs on;
//! * [`FleetDesign`] decides how treatment is allocated *across* the
//!   fleet: session-level Bernoulli everywhere (the naïve design),
//!   link-level (cluster) randomization, stratified paired-link matching
//!   on a baseline covariate, or staggered per-link switchbacks;
//! * [`FleetSim`] derives one independent RNG stream per link and steps
//!   each link with its own [`AllocationSchedule`]. Links are fully
//!   independent given their seeds, so a fleet run decomposes into
//!   [`FleetLinkJob`]s that a parallel runner can schedule as flat
//!   link×seed work items ([`run_fleet_link`] is the per-job kernel) —
//!   `repro_bench::Runner::sweep_fleet` does exactly that, bit-identical
//!   to the sequential [`FleetSim::run`].
//!
//! Cross-link *statistical* coupling — a session choosing between
//! links — is the [`FleetSim::new_routed`] mode: a shared, seeded
//! arrival stream ([`crate::routing`]) routes each session to one of k
//! candidate links, re-introducing the spillover *between clusters*
//! that real CDN routing creates. Per-link simulation RNG streams stay
//! independent either way, and the unrouted constructor consumes
//! exactly the pre-routing draw sequence, so unrouted fleets are
//! bit-identical to the engine before the routing layer existed.

use crate::config::StreamConfig;
use crate::engine::EngineBackend;
use crate::routing::{self, RoutedArrival, RoutingConfig};
use crate::scenario::AllocationSchedule;
use crate::session::{LinkId, SessionRecord};
use crate::sim::{HourlyLinkStats, LinkSim};
use crate::telemetry::{TelemetryFaults, TelemetryStats};
use dessim::SimRng;
use std::sync::Arc;

/// One sampled link of the fleet: heterogeneity multipliers relative to
/// the population's base [`StreamConfig`] plus the absolute fields they
/// imply.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Fleet-wide link index (0-based, stable across designs/seeds).
    pub link: usize,
    /// Link capacity, bits/second.
    pub capacity_bps: f64,
    /// Base (uncongested) RTT, seconds.
    pub base_rtt_s: f64,
    /// Client-count multiplier on the base peak arrival rate (already
    /// includes the capacity-proportional component, so a value equal to
    /// `capacity_bps / base.capacity_bps` means "typically loaded").
    pub arrival_scale: f64,
    /// Per-client demand multiplier on the base mean watch duration.
    pub watch_scale: f64,
}

impl LinkSpec {
    /// Check the spec is physically meaningful: every field finite and
    /// strictly positive. A NaN or zero capacity would otherwise flow
    /// silently into offered-load covariates and session outcomes.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("capacity_bps", self.capacity_bps),
            ("base_rtt_s", self.base_rtt_s),
            ("arrival_scale", self.arrival_scale),
            ("watch_scale", self.watch_scale),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "link {}: {name} must be finite and positive, got {v}",
                    self.link
                ));
            }
        }
        Ok(())
    }

    /// Materialize this link's [`StreamConfig`] from the population base.
    pub fn config(&self, base: &StreamConfig) -> StreamConfig {
        StreamConfig {
            capacity_bps: self.capacity_bps,
            base_rtt_s: self.base_rtt_s,
            peak_arrivals_per_s: base.peak_arrivals_per_s * self.arrival_scale,
            mean_watch_s: base.mean_watch_s * self.watch_scale,
            ..base.clone()
        }
    }

    /// Baseline congestion covariate: expected peak offered load relative
    /// to capacity, normalized so a link with base parameters scores 1.0.
    /// Offered load scales with arrivals × per-client demand; capacity
    /// divides it out. This is computable *before* running the link, so
    /// designs may stratify on it (see [`FleetDesign::StratifiedPairs`]).
    pub fn offered_load_index(&self, base: &StreamConfig) -> f64 {
        self.arrival_scale * self.watch_scale / (self.capacity_bps / base.capacity_bps)
    }
}

/// A seeded distribution model over link parameters.
///
/// Capacity is lognormal around the base (real peering links span orders
/// of magnitude; Buzna & Carvalho show fairness/efficiency outcomes
/// hinge on exactly this heterogeneity), base RTT is uniform over a
/// range, and offered load is capacity-proportional with two mean-one
/// lognormal jitters: client count (`demand_sigma`) and per-client
/// watch time (`watch_sigma`). The jitters make some links reliably
/// congested and others not — the across-link variation the fleet
/// designs must cope with.
#[derive(Debug, Clone)]
pub struct LinkPopulation {
    /// Template configuration; per-link fields are scaled off it.
    pub base: StreamConfig,
    /// Number of links to sample.
    pub n_links: usize,
    /// Log-scale sigma of capacity heterogeneity.
    pub capacity_sigma: f64,
    /// Uniform range of base RTTs, seconds.
    pub rtt_range_s: (f64, f64),
    /// Log-scale sigma of the mean-one client-count jitter.
    pub demand_sigma: f64,
    /// Log-scale sigma of the mean-one per-client watch-time jitter.
    pub watch_sigma: f64,
    /// Seed of the population draw (fixed across replication seeds: the
    /// fleet is the plant, not part of the randomization).
    pub seed: u64,
}

impl LinkPopulation {
    /// A moderately heterogeneous fleet: capacities spanning roughly
    /// 0.4–2.5× the base, RTTs 10–60 ms, ±30% client-count and ±20%
    /// watch-time jitter.
    pub fn moderate(base: StreamConfig, n_links: usize, seed: u64) -> LinkPopulation {
        LinkPopulation {
            base,
            n_links,
            capacity_sigma: 0.45,
            rtt_range_s: (0.010, 0.060),
            demand_sigma: 0.25,
            watch_sigma: 0.18,
            seed,
        }
    }

    /// Validate the population parameters, panicking on degenerate
    /// inputs (empty fleet, non-finite or negative sigmas, bad RTT range
    /// or base capacity) that would otherwise surface only as NaN
    /// covariates deep in the analysis (mirrors the empty-`PerDay`
    /// rejection in the scenario layer).
    pub fn validate(&self) {
        assert!(self.n_links > 0, "fleet must have at least one link");
        assert!(
            self.rtt_range_s.0 > 0.0 && self.rtt_range_s.0 <= self.rtt_range_s.1,
            "RTT range must be positive and ordered"
        );
        for (name, sigma) in [
            ("capacity_sigma", self.capacity_sigma),
            ("demand_sigma", self.demand_sigma),
            ("watch_sigma", self.watch_sigma),
        ] {
            assert!(
                sigma.is_finite() && sigma >= 0.0,
                "{name} must be finite and non-negative, got {sigma}"
            );
        }
        assert!(
            self.base.capacity_bps.is_finite() && self.base.capacity_bps > 0.0,
            "base capacity must be finite and positive"
        );
    }

    /// Sample the fleet. Deterministic in `self.seed`; link `i`'s draw
    /// depends only on the seed and `i`'s position in the stream, so
    /// growing `n_links` keeps the existing links' parameters unchanged.
    ///
    /// Panics on degenerate parameters (see [`LinkPopulation::validate`]).
    pub fn sample(&self) -> Vec<LinkSpec> {
        self.validate();
        let mut rng = SimRng::new(self.seed);
        (0..self.n_links)
            .map(|link| {
                let cap_mult = rng.lognormal(0.0, self.capacity_sigma);
                let base_rtt_s = rng.uniform(self.rtt_range_s.0, self.rtt_range_s.1);
                // Mean-one jitters so the *expected* load tracks capacity.
                let clients = rng.lognormal(
                    -0.5 * self.demand_sigma * self.demand_sigma,
                    self.demand_sigma,
                );
                let watch_scale =
                    rng.lognormal(-0.5 * self.watch_sigma * self.watch_sigma, self.watch_sigma);
                LinkSpec {
                    link,
                    capacity_bps: self.base.capacity_bps * cap_mult,
                    base_rtt_s,
                    arrival_scale: cap_mult * clients,
                    watch_scale,
                }
            })
            .collect()
    }
}

/// How treatment is allocated across the fleet — the design taxonomy of
/// the paper generalized to N links.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetDesign {
    /// Session-level Bernoulli(`p`) on every link: the standard A/B test
    /// the paper shows is biased under congestion interference (treated
    /// and control sessions share every bottleneck).
    UserLevel {
        /// Per-session treatment probability.
        p: f64,
    },
    /// Link-level (cluster) randomization: each link is independently
    /// assigned treated (allocation `p_hi`) or control (`p_lo`) with
    /// probability one half. Li et al. (2023) formalize why this
    /// cluster-level randomization recovers the TTE that unit-level
    /// randomization cannot.
    LinkLevel {
        /// Allocation on treated links (paper: 0.95 rather than 1.0, so
        /// spillover stays estimable).
        p_hi: f64,
        /// Allocation on control links (paper: 0.05).
        p_lo: f64,
    },
    /// Stratified paired-link matching: links are sorted by the baseline
    /// covariate [`LinkSpec::offered_load_index`], adjacent links are
    /// paired, and a coin per pair sends one to `p_hi` and the other to
    /// `p_lo` — the §4 paired design scaled out, with matching on the
    /// covariate instead of hand-picked twins. With an odd link count
    /// the link with the median covariate sits out (schedule 0.0,
    /// excluded from [`FleetPlan::pairs`]).
    StratifiedPairs {
        /// Allocation on the treated side of each pair.
        p_hi: f64,
        /// Allocation on the control side of each pair.
        p_lo: f64,
    },
    /// Staggered switchbacks: every link alternates between `p_hi` and
    /// `p_lo` in blocks of `period_days`, with link `i` phase-shifted by
    /// `i mod 2·period_days` days so the fleet is never all-treated or
    /// all-control on the same day (the stagger averages out fleet-wide
    /// day shocks that a synchronized switchback confounds with the arm).
    StaggeredSwitchback {
        /// Allocation on treated days.
        p_hi: f64,
        /// Allocation on control days.
        p_lo: f64,
        /// Days per switchback block (≥ 1).
        period_days: usize,
    },
}

/// The realized fleet assignment a design produces for one seed.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Per-link allocation schedule, index-aligned with the specs.
    pub schedules: Vec<AllocationSchedule>,
    /// Cluster arm per link: `Some(true)` = treated cluster, `Some(false)`
    /// = control cluster, `None` = no link-level arm (user-level and
    /// switchback designs, or a stratified odd link sitting out).
    pub cluster_treated: Vec<Option<bool>>,
    /// Matched pairs as `(treated link, control link)`; empty for
    /// non-paired designs.
    pub pairs: Vec<(usize, usize)>,
}

impl FleetDesign {
    /// Realize the design over `specs` for one assignment seed.
    pub fn plan(&self, specs: &[LinkSpec], base: &StreamConfig, seed: u64) -> FleetPlan {
        let n = specs.len();
        let mut rng = SimRng::new(seed);
        match *self {
            FleetDesign::UserLevel { p } => FleetPlan {
                schedules: vec![AllocationSchedule::Constant(p); n],
                cluster_treated: vec![None; n],
                pairs: Vec::new(),
            },
            FleetDesign::LinkLevel { p_hi, p_lo } => {
                let arms: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
                FleetPlan {
                    schedules: arms
                        .iter()
                        .map(|&t| AllocationSchedule::Constant(if t { p_hi } else { p_lo }))
                        .collect(),
                    cluster_treated: arms.into_iter().map(Some).collect(),
                    pairs: Vec::new(),
                }
            }
            FleetDesign::StratifiedPairs { p_hi, p_lo } => {
                // Sort by the baseline covariate, pair neighbours. Ties
                // are broken by link index (total_cmp on the covariate
                // first keeps the order deterministic for equal draws).
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    specs[a]
                        .offered_load_index(base)
                        .total_cmp(&specs[b].offered_load_index(base))
                        .then(a.cmp(&b))
                });
                // Odd fleet: the median link sits out, keeping both tails
                // of the covariate distribution inside the matching.
                if order.len() % 2 == 1 {
                    order.remove(order.len() / 2);
                }
                let mut schedules = vec![AllocationSchedule::Constant(0.0); n];
                let mut cluster_treated = vec![None; n];
                let mut pairs = Vec::with_capacity(order.len() / 2);
                for w in order.chunks_exact(2) {
                    let (a, b) = (w[0], w[1]);
                    let a_treated = rng.bernoulli(0.5);
                    let (t, c) = if a_treated { (a, b) } else { (b, a) };
                    schedules[t] = AllocationSchedule::Constant(p_hi);
                    schedules[c] = AllocationSchedule::Constant(p_lo);
                    cluster_treated[t] = Some(true);
                    cluster_treated[c] = Some(false);
                    pairs.push((t, c));
                }
                FleetPlan {
                    schedules,
                    cluster_treated,
                    pairs,
                }
            }
            FleetDesign::StaggeredSwitchback {
                p_hi,
                p_lo,
                period_days,
            } => {
                assert!(
                    period_days >= 1,
                    "switchback period must be at least one day"
                );
                let days = base.days.max(1);
                let schedules = (0..n)
                    .map(|i| {
                        let phase = i % (2 * period_days);
                        let plan: Vec<bool> = (0..days)
                            .map(|d| ((d + phase) / period_days) % 2 == 0)
                            .collect();
                        AllocationSchedule::switchback(&plan, p_hi, p_lo)
                    })
                    .collect();
                FleetPlan {
                    schedules,
                    cluster_treated: vec![None; n],
                    pairs: Vec::new(),
                }
            }
        }
    }
}

/// One link's slice of a fleet run: everything [`run_fleet_link`] needs,
/// self-contained so link×seed jobs can be scheduled on any worker.
#[derive(Debug, Clone)]
pub struct FleetLinkJob {
    /// Fleet-wide link index.
    pub link: usize,
    /// The sampled spec (kept for covariate lookups in the analysis).
    pub spec: LinkSpec,
    /// Fully materialized link configuration.
    pub cfg: StreamConfig,
    /// This link's allocation schedule.
    pub schedule: AllocationSchedule,
    /// Cluster arm, when the design assigns one.
    pub treated_cluster: Option<bool>,
    /// Baseline covariate cached from the spec.
    pub offered_load: f64,
    /// Independent per-link simulation seed.
    pub seed: u64,
    /// Telemetry fault model applied to this link's record stream after
    /// the simulation (see [`crate::telemetry`]); `None` = perfect
    /// collection. The fault RNG derives from the fault seed and link
    /// index only, never from [`FleetLinkJob::seed`].
    pub faults: Option<TelemetryFaults>,
    /// This link's slice of the shared routed arrival stream
    /// ([`FleetSim::new_routed`]); `None` = the link draws its own
    /// arrivals from [`FleetLinkJob::seed`]. Shared so cloning jobs for
    /// a parallel sweep does not duplicate the stream.
    pub routed: Option<Arc<Vec<RoutedArrival>>>,
}

/// One link's outcome within a fleet run.
#[derive(Debug, Clone)]
pub struct FleetLinkRun {
    /// Fleet-wide link index.
    pub link: usize,
    /// The sampled spec.
    pub spec: LinkSpec,
    /// Cluster arm, when the design assigns one.
    pub treated_cluster: Option<bool>,
    /// Baseline covariate ([`LinkSpec::offered_load_index`]).
    pub offered_load: f64,
    /// Expected treated fraction under this link's schedule (mean
    /// allocation over the run's days) — the denominator side of the
    /// sample-ratio-mismatch guardrail.
    pub expected_allocation: f64,
    /// The allocation schedule the link actually ran (carried so
    /// temporal estimators — switchbacks with carryover burn-in — can
    /// reconstruct each day's arm without re-deriving the plan).
    pub schedule: AllocationSchedule,
    /// Session records as *delivered* by the telemetry pipeline (equal
    /// to the simulator's output when the job carries no faults).
    pub sessions: Vec<SessionRecord>,
    /// Hourly link statistics (measured in-network, not subject to the
    /// record-stream fault model).
    pub hourly: Vec<HourlyLinkStats>,
    /// Per-arm telemetry accounting for this link.
    pub telemetry: TelemetryStats,
}

/// A whole fleet's outcome: per-link runs (in link order) plus the
/// realized pairing, when the design produced one.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-link outcomes, index-aligned with the sampled specs.
    pub links: Vec<FleetLinkRun>,
    /// Matched `(treated, control)` pairs (stratified design only).
    pub pairs: Vec<(usize, usize)>,
}

impl FleetRun {
    /// Total session count across the fleet.
    pub fn total_sessions(&self) -> usize {
        self.links.iter().map(|l| l.sessions.len()).sum()
    }
}

/// Run one link of a fleet to its horizon. This is the kernel the
/// parallel runner schedules; [`FleetSim::run`] maps it sequentially.
pub fn run_fleet_link(job: &FleetLinkJob) -> FleetLinkRun {
    run_fleet_link_with(job, EngineBackend::Tick)
}

/// [`run_fleet_link`] on a selected engine backend. Session records —
/// and therefore every fleet estimator — are bit-identical across
/// backends (see [`crate::engine`]); hourly statistics agree to ≤1e-9.
pub fn run_fleet_link_with(job: &FleetLinkJob, backend: EngineBackend) -> FleetLinkRun {
    if let Some(faults) = &job.faults {
        assert!(
            !faults.should_crash(job.link),
            "telemetry collection for link {} crashed (scripted by TelemetryFaults::crash_links)",
            job.link
        );
    }
    let sim = LinkSim::new(job.cfg.clone(), LinkId::One, job.schedule.clone(), job.seed);
    let (sessions, hourly) = match &job.routed {
        None => sim.run_with(backend),
        Some(arrivals) => sim.run_routed(arrivals, backend),
    };
    let days = job.cfg.days.max(1);
    let expected_allocation =
        (0..days).map(|d| job.schedule.allocation(d)).sum::<f64>() / days as f64;
    let (sessions, telemetry) = match &job.faults {
        Some(faults) => faults.apply(job.link, sessions),
        None => {
            let stats = TelemetryStats::clean(&sessions);
            (sessions, stats)
        }
    };
    FleetLinkRun {
        link: job.link,
        spec: job.spec.clone(),
        treated_cluster: job.treated_cluster,
        offered_load: job.offered_load,
        expected_allocation,
        schedule: job.schedule.clone(),
        sessions,
        hourly,
        telemetry,
    }
}

/// A fleet of heterogeneous links under one design and one replication
/// seed.
///
/// Seed discipline: the replication seed forks (via the usual SplitMix64
/// expansion in [`SimRng`]) one assignment seed — consumed by
/// [`FleetDesign::plan`], so re-randomizing designs draw fresh cluster
/// coins per replication — and then one simulation seed per link, in
/// link order. Links therefore never share RNG state, which is what
/// makes [`FleetSim::run`] and a parallel link×seed sweep bit-identical.
#[derive(Debug, Clone)]
pub struct FleetSim {
    jobs: Vec<FleetLinkJob>,
    pairs: Vec<(usize, usize)>,
}

impl FleetSim {
    /// Build the fleet world: realize `design` over `specs` and derive
    /// per-link seeds from `seed`.
    ///
    /// Panics if any realized schedule fails
    /// [`AllocationSchedule::validate`], any spec fails
    /// [`LinkSpec::validate`], or `specs` is empty.
    pub fn new(
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seed: u64,
    ) -> FleetSim {
        FleetSim::build(base, specs, design, seed).0
    }

    /// The shared constructor body: builds the fleet exactly as the
    /// unrouted path always has (same draw sequence from `seed`) and
    /// also returns the root RNG so [`FleetSim::new_routed`] can derive
    /// the router's stream as *additional* draws — the unrouted
    /// sequence is a strict prefix, which is what the golden
    /// bit-identity oracle pins.
    fn build(
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seed: u64,
    ) -> (FleetSim, SimRng) {
        assert!(!specs.is_empty(), "fleet must have at least one link");
        for spec in specs {
            if let Err(e) = spec.validate() {
                panic!("FleetSim::new: invalid spec: {e}");
            }
        }
        let mut root = SimRng::new(seed);
        let assignment_seed = root.next_u64();
        let plan = design.plan(specs, base, assignment_seed);
        debug_assert_eq!(plan.schedules.len(), specs.len());
        let jobs = specs
            .iter()
            .zip(plan.schedules)
            .zip(plan.cluster_treated)
            .map(|((spec, schedule), treated_cluster)| {
                if let Err(e) = schedule.validate() {
                    panic!("FleetSim::new: link {}: invalid schedule: {e}", spec.link);
                }
                FleetLinkJob {
                    link: spec.link,
                    spec: spec.clone(),
                    cfg: spec.config(base),
                    schedule,
                    treated_cluster,
                    offered_load: spec.offered_load_index(base),
                    seed: root.next_u64(),
                    faults: None,
                    routed: None,
                }
            })
            .collect();
        (
            FleetSim {
                jobs,
                pairs: plan.pairs,
            },
            root,
        )
    }

    /// Build a *routed* fleet world: the same plan and per-link seeds as
    /// [`FleetSim::new`], plus a shared arrival stream routed across the
    /// links by `routing` (see [`crate::routing`]). The router's seed is
    /// one extra draw from the root stream, taken *after* every per-link
    /// seed, so the assignment and link seeds match the unrouted fleet
    /// for the same `seed` — only where sessions arrive changes.
    ///
    /// Panics on an invalid [`RoutingConfig`] (plus everything
    /// [`FleetSim::new`] panics on).
    pub fn new_routed(
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: &RoutingConfig,
        seed: u64,
    ) -> FleetSim {
        if let Err(e) = routing.validate() {
            panic!("FleetSim::new_routed: {e}");
        }
        let (mut fleet, mut root) = FleetSim::build(base, specs, design, seed);
        let router_seed = root.next_u64();
        let schedules: Vec<AllocationSchedule> =
            fleet.jobs.iter().map(|job| job.schedule.clone()).collect();
        let streams = routing::route_fleet(base, specs, &schedules, routing, router_seed);
        for (job, stream) in fleet.jobs.iter_mut().zip(streams) {
            job.routed = Some(Arc::new(stream));
        }
        fleet
    }

    /// Attach a telemetry fault model to every link job. The sim seeds
    /// are untouched — the physical world is identical to the fault-free
    /// fleet; only its *observation* changes.
    ///
    /// Panics if `faults` fails [`TelemetryFaults::validate`].
    pub fn with_faults(mut self, faults: &TelemetryFaults) -> FleetSim {
        if let Err(e) = faults.validate() {
            panic!("FleetSim::with_faults: {e}");
        }
        for job in &mut self.jobs {
            job.faults = Some(faults.clone());
        }
        self
    }

    /// The per-link jobs, in link order.
    pub fn jobs(&self) -> &[FleetLinkJob] {
        &self.jobs
    }

    /// Decompose into jobs plus the realized pairing (for parallel
    /// schedulers that regroup results themselves).
    pub fn into_parts(self) -> (Vec<FleetLinkJob>, Vec<(usize, usize)>) {
        (self.jobs, self.pairs)
    }

    /// Run every link sequentially (the parity oracle for the parallel
    /// sweep).
    pub fn run(self) -> FleetRun {
        self.run_with(EngineBackend::Tick)
    }

    /// [`FleetSim::run`] on a selected engine backend.
    pub fn run_with(self, backend: EngineBackend) -> FleetRun {
        let links = self
            .jobs
            .iter()
            .map(|job| run_fleet_link_with(job, backend))
            .collect();
        FleetRun {
            links,
            pairs: self.pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny, fast fleet base: one day, small links, congestion regime
    /// matching the defaults (peak demand ≈ 1.2× capacity).
    fn small_base() -> StreamConfig {
        StreamConfig {
            days: 1,
            capacity_bps: 30e6,
            peak_arrivals_per_s: 0.24 * 0.03,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    fn small_pop(n: usize) -> LinkPopulation {
        LinkPopulation::moderate(small_base(), n, 99)
    }

    #[test]
    fn population_sampling_is_deterministic_and_prefix_stable() {
        let a = small_pop(8).sample();
        let b = small_pop(8).sample();
        assert_eq!(a, b);
        let longer = small_pop(12).sample();
        assert_eq!(a[..], longer[..8], "growing the fleet keeps old links");
        let other = LinkPopulation {
            seed: 100,
            ..small_pop(8)
        }
        .sample();
        assert_ne!(a, other);
    }

    #[test]
    fn population_heterogeneity_is_real() {
        let specs = small_pop(64).sample();
        let caps: Vec<f64> = specs.iter().map(|s| s.capacity_bps).collect();
        let max = caps.iter().cloned().fold(f64::MIN, f64::max);
        let min = caps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "capacity spread {min}..{max}");
        let base = small_base();
        let loads: Vec<f64> = specs.iter().map(|s| s.offered_load_index(&base)).collect();
        let lmax = loads.iter().cloned().fold(f64::MIN, f64::max);
        let lmin = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(lmax / lmin > 1.5, "load spread {lmin}..{lmax}");
        // Mean-one jitters keep the typical link near unit load.
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((0.6..1.6).contains(&mean), "mean load index {mean}");
    }

    #[test]
    fn user_level_plan_is_uniform() {
        let base = small_base();
        let specs = small_pop(6).sample();
        let plan = FleetDesign::UserLevel { p: 0.4 }.plan(&specs, &base, 7);
        assert_eq!(plan.schedules.len(), 6);
        assert!(plan.cluster_treated.iter().all(Option::is_none));
        assert!(plan.pairs.is_empty());
        for s in &plan.schedules {
            assert_eq!(s.allocation(0), 0.4);
        }
    }

    #[test]
    fn link_level_plan_assigns_clusters() {
        let base = small_base();
        let specs = small_pop(40).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let plan = design.plan(&specs, &base, 3);
        let treated = plan
            .cluster_treated
            .iter()
            .filter(|a| **a == Some(true))
            .count();
        // Bernoulli(0.5) over 40 links: both arms present with margin.
        assert!((8..=32).contains(&treated), "treated clusters {treated}");
        for (arm, s) in plan.cluster_treated.iter().zip(&plan.schedules) {
            let expect = if arm.unwrap() { 0.95 } else { 0.05 };
            assert_eq!(s.allocation(2), expect);
        }
        // Different assignment seeds re-randomize.
        let plan2 = design.plan(&specs, &base, 4);
        assert_ne!(plan.cluster_treated, plan2.cluster_treated);
    }

    #[test]
    fn stratified_pairs_form_perfect_matching_on_even_fleets() {
        let base = small_base();
        let specs = small_pop(20).sample();
        let design = FleetDesign::StratifiedPairs {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let plan = design.plan(&specs, &base, 11);
        assert_eq!(plan.pairs.len(), 10);
        let mut seen = vec![0usize; 20];
        for &(t, c) in &plan.pairs {
            seen[t] += 1;
            seen[c] += 1;
            assert_eq!(plan.cluster_treated[t], Some(true));
            assert_eq!(plan.cluster_treated[c], Some(false));
            assert_eq!(plan.schedules[t].allocation(0), 0.95);
            assert_eq!(plan.schedules[c].allocation(0), 0.05);
        }
        assert!(seen.iter().all(|&c| c == 1), "perfect matching: {seen:?}");
        // Pair partners are covariate neighbours: within each pair the
        // covariate gap is at most the full spread divided by pair count
        // … loosely — just check pairs are closer than random by
        // asserting each pair's gap is below the population's IQR.
        let mut loads: Vec<f64> = specs.iter().map(|s| s.offered_load_index(&base)).collect();
        loads.sort_by(f64::total_cmp);
        let iqr = loads[14] - loads[5];
        for &(t, c) in &plan.pairs {
            let gap =
                (specs[t].offered_load_index(&base) - specs[c].offered_load_index(&base)).abs();
            assert!(gap <= iqr, "pair ({t},{c}) gap {gap} vs IQR {iqr}");
        }
    }

    #[test]
    fn stratified_pairs_odd_fleet_sits_one_out() {
        let base = small_base();
        let specs = small_pop(7).sample();
        let plan = FleetDesign::StratifiedPairs {
            p_hi: 0.9,
            p_lo: 0.1,
        }
        .plan(&specs, &base, 5);
        assert_eq!(plan.pairs.len(), 3);
        let unpaired = plan.cluster_treated.iter().filter(|a| a.is_none()).count();
        assert_eq!(unpaired, 1);
        // The sitting-out link is untreated.
        let idx = plan
            .cluster_treated
            .iter()
            .position(Option::is_none)
            .unwrap();
        assert_eq!(plan.schedules[idx].allocation(0), 0.0);
    }

    #[test]
    fn staggered_switchback_phases_differ() {
        let base = StreamConfig {
            days: 4,
            ..small_base()
        };
        let specs = small_pop(4).sample();
        let plan = FleetDesign::StaggeredSwitchback {
            p_hi: 0.95,
            p_lo: 0.05,
            period_days: 1,
        }
        .plan(&specs, &base, 1);
        // Link 0: T C T C; link 1: C T C T (phase shift of one day).
        assert_eq!(plan.schedules[0].allocation(0), 0.95);
        assert_eq!(plan.schedules[0].allocation(1), 0.05);
        assert_eq!(plan.schedules[1].allocation(0), 0.05);
        assert_eq!(plan.schedules[1].allocation(1), 0.95);
        // Every day has both arms somewhere in the fleet.
        for d in 0..4 {
            let treated = plan
                .schedules
                .iter()
                .filter(|s| s.allocation(d) > 0.5)
                .count();
            assert!(treated > 0 && treated < 4, "day {d}: {treated}");
        }
    }

    #[test]
    fn fleet_run_is_deterministic_and_links_are_independent() {
        let base = small_base();
        let specs = small_pop(3).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let fingerprint = |run: &FleetRun| -> Vec<(usize, usize, u64)> {
            run.links
                .iter()
                .map(|l| {
                    (
                        l.link,
                        l.sessions.len(),
                        l.sessions.iter().map(|s| s.bytes).sum::<f64>().to_bits(),
                    )
                })
                .collect()
        };
        let a = FleetSim::new(&base, &specs, &design, 42).run();
        let b = FleetSim::new(&base, &specs, &design, 42).run();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = FleetSim::new(&base, &specs, &design, 43).run();
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // Every link produced sessions and a full day of hourly stats.
        for l in &a.links {
            assert!(
                !l.sessions.is_empty(),
                "link {} produced no sessions",
                l.link
            );
            assert_eq!(l.hourly.len(), 24);
        }
    }

    /// Order-sensitive bitwise fingerprint of every record field, per
    /// link — the oracle the routed parity tests compare on.
    fn record_fingerprint(run: &FleetRun) -> Vec<(usize, u64)> {
        run.links
            .iter()
            .map(|l| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut fold = |bits: u64| {
                    h ^= bits;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                };
                for r in &l.sessions {
                    fold(r.day as u64);
                    fold(r.hour as u64);
                    fold(u64::from(r.treated));
                    fold(r.arrival_s.to_bits());
                    fold(r.throughput_bps.to_bits());
                    fold(r.min_rtt_s.to_bits());
                    fold(r.play_delay_s.to_bits());
                    fold(r.bitrate_bps.to_bits());
                    fold(r.quality.to_bits());
                    fold(r.bytes.to_bits());
                    fold(r.retx_bytes.to_bits());
                    fold(u64::from(r.switches));
                    fold(r.duration_s.to_bits());
                }
                (l.sessions.len(), h)
            })
            .collect()
    }

    fn routing_cfg(policy: crate::routing::RoutingPolicy, k: usize) -> RoutingConfig {
        RoutingConfig::new(policy, k)
    }

    #[test]
    fn routed_fleet_is_deterministic_and_produces_sessions() {
        let base = small_base();
        let specs = small_pop(4).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let routing = routing_cfg(crate::routing::RoutingPolicy::LeastLoad, 2);
        let a = FleetSim::new_routed(&base, &specs, &design, &routing, 42).run();
        let b = FleetSim::new_routed(&base, &specs, &design, &routing, 42).run();
        assert_eq!(record_fingerprint(&a), record_fingerprint(&b));
        assert!(a.total_sessions() > 100, "routed fleet too quiet");
        // Routing redistributes the same superposed demand, so the
        // fleet-wide session count stays in the unrouted ballpark.
        let unrouted = FleetSim::new(&base, &specs, &design, 42).run();
        let (ra, ru) = (a.total_sessions() as f64, unrouted.total_sessions() as f64);
        assert!(
            (ra / ru - 1.0).abs() < 0.25,
            "routed {ra} vs unrouted {ru} sessions"
        );
    }

    #[test]
    fn routed_fleet_tick_event_parity() {
        let base = small_base();
        let specs = small_pop(4).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        for policy in crate::routing::RoutingPolicy::ALL {
            let routing = routing_cfg(policy, 3);
            let tick = FleetSim::new_routed(&base, &specs, &design, &routing, 77)
                .run_with(EngineBackend::Tick);
            let event = FleetSim::new_routed(&base, &specs, &design, &routing, 77)
                .run_with(EngineBackend::Event);
            assert_eq!(
                record_fingerprint(&tick),
                record_fingerprint(&event),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn routed_seed_discipline_is_a_prefix_of_unrouted() {
        // Same seed ⇒ same assignment and same per-link sim seeds; the
        // router stream is an extra draw, never an insertion.
        let base = small_base();
        let specs = small_pop(5).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let routing = routing_cfg(crate::routing::RoutingPolicy::WeightedRandom, 2);
        let unrouted = FleetSim::new(&base, &specs, &design, 9);
        let routed = FleetSim::new_routed(&base, &specs, &design, &routing, 9);
        for (u, r) in unrouted.jobs().iter().zip(routed.jobs()) {
            assert_eq!(u.seed, r.seed, "link {} sim seed", u.link);
            assert_eq!(u.treated_cluster, r.treated_cluster, "link {} arm", u.link);
            assert!(u.routed.is_none());
            assert!(r.routed.is_some());
        }
    }

    #[test]
    fn user_level_treated_fraction_matches_p() {
        let base = small_base();
        let specs = small_pop(4).sample();
        let run = FleetSim::new(&base, &specs, &FleetDesign::UserLevel { p: 0.3 }, 9).run();
        let (mut treated, mut total) = (0usize, 0usize);
        for l in &run.links {
            treated += l.sessions.iter().filter(|s| s.treated).count();
            total += l.sessions.len();
        }
        let frac = treated as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.04, "treated fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_population_rejected() {
        let mut pop = small_pop(4);
        pop.n_links = 0;
        let _ = pop.sample();
    }

    #[test]
    #[should_panic(expected = "demand_sigma")]
    fn degenerate_population_sigma_rejected() {
        let mut pop = small_pop(4);
        pop.demand_sigma = f64::NAN;
        let _ = pop.sample();
    }

    #[test]
    #[should_panic(expected = "RTT range")]
    fn inverted_rtt_range_rejected() {
        let mut pop = small_pop(4);
        pop.rtt_range_s = (0.060, 0.010);
        let _ = pop.sample();
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_specs_rejected() {
        let _ = FleetSim::new(&small_base(), &[], &FleetDesign::UserLevel { p: 0.5 }, 1);
    }

    #[test]
    #[should_panic(expected = "capacity_bps")]
    fn non_finite_spec_rejected() {
        let mut specs = small_pop(2).sample();
        specs[1].capacity_bps = f64::NAN;
        let _ = FleetSim::new(&small_base(), &specs, &FleetDesign::UserLevel { p: 0.5 }, 1);
    }

    #[test]
    #[should_panic(expected = "watch_scale")]
    fn negative_spec_scale_rejected() {
        let mut specs = small_pop(2).sample();
        specs[0].watch_scale = -0.5;
        let _ = FleetSim::new(&small_base(), &specs, &FleetDesign::UserLevel { p: 0.5 }, 1);
    }

    #[test]
    fn faults_change_observation_not_the_world() {
        let base = small_base();
        let specs = small_pop(3).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let clean = FleetSim::new(&base, &specs, &design, 21).run();
        let faults = TelemetryFaults {
            drop_mcar: 0.15,
            duplicate_p: 0.1,
            reorder_window: 4,
            ..TelemetryFaults::none(77)
        };
        let faulty = FleetSim::new(&base, &specs, &design, 21)
            .with_faults(&faults)
            .run();
        for (c, f) in clean.links.iter().zip(&faulty.links) {
            // Hourly (in-network) stats untouched by record-stream faults.
            assert_eq!(c.hourly.len(), f.hourly.len());
            for (a, b) in c.hourly.iter().zip(&f.hourly) {
                assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            }
            // Delivered records are an ordered subsequence of the clean run.
            assert!(f.sessions.len() < c.sessions.len());
            let mut clean_iter = c.sessions.iter();
            for s in &f.sessions {
                assert!(
                    clean_iter.any(|cs| cs.arrival_s.to_bits() == s.arrival_s.to_bits()),
                    "delivered record not an in-order member of the clean stream"
                );
            }
            assert_eq!(f.telemetry.sent_total() as usize, c.sessions.len());
            assert_eq!(f.telemetry.delivered_total() as usize, f.sessions.len());
            // Clean runs carry a pass-through ledger.
            assert_eq!(c.telemetry.sent, c.telemetry.delivered);
        }
        // Same seeds, same faults: byte-identical observation.
        let again = FleetSim::new(&base, &specs, &design, 21)
            .with_faults(&faults)
            .run();
        for (a, b) in faulty.links.iter().zip(&again.links) {
            assert_eq!(a.sessions.len(), b.sessions.len());
            assert_eq!(a.telemetry, b.telemetry);
        }
    }

    #[test]
    fn expected_allocation_reflects_the_schedule() {
        let base = small_base();
        let specs = small_pop(4).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = FleetSim::new(&base, &specs, &design, 13).run();
        for l in &run.links {
            let expect = if l.treated_cluster == Some(true) {
                0.95
            } else {
                0.05
            };
            assert_eq!(l.expected_allocation, expect);
        }
    }

    #[test]
    #[should_panic(expected = "crashed")]
    fn scripted_crash_link_panics() {
        let base = small_base();
        let specs = small_pop(2).sample();
        let sim = FleetSim::new(&base, &specs, &FleetDesign::UserLevel { p: 0.5 }, 1).with_faults(
            &TelemetryFaults {
                crash_links: vec![1],
                ..TelemetryFaults::none(0)
            },
        );
        let _ = sim.run();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_faults_rejected() {
        let base = small_base();
        let specs = small_pop(2).sample();
        let _ = FleetSim::new(&base, &specs, &FleetDesign::UserLevel { p: 0.5 }, 1).with_faults(
            &TelemetryFaults {
                drop_mcar: 2.0,
                ..TelemetryFaults::none(0)
            },
        );
    }

    #[test]
    fn cluster_links_carry_their_arm_allocation() {
        let base = small_base();
        let specs = small_pop(6).sample();
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = FleetSim::new(&base, &specs, &design, 17).run();
        for l in &run.links {
            let frac = l.sessions.iter().filter(|s| s.treated).count() as f64
                / l.sessions.len().max(1) as f64;
            match l.treated_cluster {
                Some(true) => assert!(frac > 0.85, "link {}: {frac}", l.link),
                Some(false) => assert!(frac < 0.15, "link {}: {frac}", l.link),
                None => unreachable!("link-level design assigns every link"),
            }
        }
    }
}
