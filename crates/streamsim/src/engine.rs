//! Engine backends: the reference tick loop and the hybrid tick/event
//! driver.
//!
//! The tick loop ([`LinkSim::step`]) pays O(active sessions) every tick
//! even when nothing allocation-relevant happens. This module keeps that
//! loop verbatim as the bit-exactness oracle and adds a hybrid backend
//! that advances the world *span-wise*: it pre-scans the arrival
//! process — consuming the arrival RNG in the tick loop's own draw
//! order — and *folds* each arrival into the span whenever its peak
//! demand keeps the span's fit proof alive, so spans stretch to the
//! next allocation-*breaking* macro event: an unfoldable arrival
//! burst, an hour boundary (statistics flush + diurnal-rate change),
//! or the horizon. Terminators are scheduled on `dessim`'s calendar
//! [`EventQueue`] (whose FIFO tie-breaking reproduces the tick loop's
//! within-tick order: flush before arrivals), and the gap replays in
//! one session-major pass (`ClientArena::replay_span`).
//!
//! # Event taxonomy
//!
//! Allocation on this link changes only when the *set of demands*
//! changes or the link state moves. Demands are two-valued (peak or
//! zero — the invariant the allocation order already exploits), so the
//! events are:
//!
//! - **arrival**: a new session joins (Poisson process, rate constant
//!   within an hour). An arrival is *foldable*: its peak demand is a
//!   pure function of its private RNG stream, so the pre-scan prices it
//!   without constructing it and absorbs it into the span unless it
//!   breaks the span's fit bound;
//! - **exit**: a session finishes or abandons;
//! - **chunk boundary / rung switch**: a session's noise or bitrate
//!   changes its fill rate;
//! - **idle toggle**: a full-buffer session's demand flips between peak
//!   and zero;
//! - **hour boundary**: the diurnal arrival rate and the hourly
//!   statistics window roll over;
//! - **horizon**: the run ends.
//!
//! Only arrivals, hour boundaries and the horizon are *exogenous*; the
//! rest are per-session and — crucially — do not couple sessions while
//! the link is a fixed point. That is the decoupled-fit invariant
//! ([`decoupled_fit_bound_bps`](crate::link::FluidLink::decoupled_fit_bound_bps)):
//! with an empty queue and
//! aggregate demand under capacity, water-filling is the identity
//! (every session is served exactly its demand, bitwise), overload is
//! exactly zero, so the queue stays empty, loss stays zero and RTT
//! stays at base. Under that invariant exits, chunk boundaries, rung
//! switches and idle toggles change *which* demands are served but
//! never *how much* any other session gets — so they need no global
//! re-allocation and are handled inside the span replay, per session.
//!
//! # Modes
//!
//! Per span the driver picks, in order:
//!
//! - **guaranteed decoupled** — queue empty and Σ peak demand ≤ the fit
//!   bound: demand can never exceed peak, so the span replays with no
//!   validation and no undo logging;
//! - **optimistic decoupled** — queue empty and Σ peak ≤
//!   `OPTIMISTIC_BETA` × capacity: full-buffer idling usually keeps
//!   *actual* aggregate demand under the bound even when the peak sum
//!   is above it. The replay records per-tick aggregate demand, an undo
//!   log snapshots every session, and a failed post-hoc validation
//!   rolls the span back. The validated prefix before the first
//!   failing tick is provably fitting, so it is salvaged by an
//!   unvalidated re-replay; only the tail re-runs through the coupled
//!   tick loop (injecting the pre-drawn arrivals, so the RNG stream is
//!   untouched), and an exponential backoff window suppresses the next
//!   optimistic attempt — near-capacity load that failed to fit once
//!   tends to keep hovering around the bound;
//! - **coupled** — anything else (standing queue, or load too high):
//!   the verbatim tick loop, one tick at a time.
//!
//! # Exactness contract
//!
//! [`SessionRecord`]s are **bit-identical** to the tick engine's in all
//! modes: decoupled spans replay term-for-term the same arithmetic on
//! the same values in the same per-session order (sessions interact
//! only through the link, which is a fixed point), the arrival RNG is
//! pre-drawn in the tick loop's own order, and record append order is
//! restored by (finish tick, slot) sorting. [`HourlyLinkStats`] are
//! means of per-tick sums that the span accumulates per-session
//! instead of per-tick — same values, different addition order — so
//! they agree to ≤1e-9 *relative* rather than bitwise; fleet-level
//! estimators consume session records only and inherit bit-identity.

use crate::abr::Ladder;
use crate::arena::{SpanArrival, SpanArrivalCtx, SpanResult, SpanStats};
use crate::config::StreamConfig;
use crate::demand::DiurnalDemand;
use crate::routing::RoutedArrival;
use crate::session::SessionRecord;
use crate::sim::{HourlyLinkStats, LinkSim};
use dessim::{EventQueue, SimRng, SimTime};

/// Which backend [`LinkSim::run_with`] drives the world with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineBackend {
    /// The reference per-tick loop — the bit-exactness oracle.
    #[default]
    Tick,
    /// The hybrid tick/event driver: decoupled spans between
    /// allocation-changing macro events, the tick loop everywhere else.
    Event,
}

/// Optimistic spans are attempted while Σ peak demand ≤ β × capacity:
/// full-buffer sessions idle roughly a third of their ticks in steady
/// state, so actual demand clears the fit bound well above Σ peak ==
/// capacity. Past 2× even a perfectly staggered population cannot fit,
/// and the undo log would be pure waste.
const OPTIMISTIC_BETA: f64 = 2.0;

/// After a rollback the driver runs coupled for this many ticks before
/// retrying optimism, doubling the window (up to
/// [`BACKOFF_MAX_TICKS`]) on each repeated failure within the hour.
/// A near-capacity load that failed to fit once often fits again within
/// seconds (sessions finish, buffers fill and idle), so blanket
/// pessimism for the rest of the hour throws away millions of decoupled
/// session-ticks; bounded retries cap the rollback waste at a few spans
/// per hour instead. The retry policy affects performance only — every
/// committed optimistic span is still validated against the fit bound.
const BACKOFF_INITIAL_TICKS: u32 = 64;

/// Ceiling for the rollback backoff window (see
/// [`BACKOFF_INITIAL_TICKS`]).
const BACKOFF_MAX_TICKS: u32 = 1024;

/// Length, in ticks, of an *optimistic* span. An optimistic span
/// gambles the whole replay on a post-hoc fit validation; the cap
/// bounds both the gamble (a rollback coupled-runs the unvalidated
/// tail) and the undo/per-tick-demand bookkeeping. Guaranteed spans
/// carry no such risk and run uncapped to the hour boundary.
const OPT_SPAN_CAP: usize = 128;

/// Exogenous macro events the span pre-scan schedules on the calendar
/// queue, keyed by span-local tick index. Coincident events (an hour
/// boundary tick that also draws arrivals) rely on FIFO tie-breaking to
/// replay the tick loop's within-tick order: flush, then arrivals.
enum MacroEvent {
    /// `(day, hour)` changed at this tick: flush the hourly window.
    HourBoundary,
    /// This tick's pre-drawn arrivals could not be folded into the span
    /// (or belong to an hour-boundary tick): execute the tick coupled,
    /// injecting them from the carried pre-drawn randomness.
    Arrivals,
    /// `now` reached the horizon: the run is over.
    Horizon,
}

/// The arriving session's peak demand, priced from a clone of its
/// forked RNG stream without constructing the client: the leading
/// [`Client::new`](crate::client::Client::new) draws in their exact
/// order, stopping at the access line (`initial_share_bps` feeds only
/// the non-random throughput estimate, so peak is share-independent).
/// The replay re-derives the peak through `Client::new` itself and
/// debug-asserts it matches bitwise.
fn clone_draw_peak(cfg: &StreamConfig, ladder: &Ladder, child: &SimRng) -> f64 {
    let mut r = child.clone();
    let _watch = r.exponential(1.0 / cfg.mean_watch_s);
    let _patience = r.exponential(1.0 / cfg.mean_patience_s);
    let access_bps = (cfg.access_median_bps * r.lognormal(0.0, cfg.access_sigma))
        .clamp(ladder.min_rate() * 1.5, cfg.session_max_bps);
    access_bps.min(cfg.session_max_bps)
}

/// Post-replay bookkeeping for a committed span of `span` ticks ending
/// at `now_end`: retire finished sessions from the allocation order,
/// binary-insert surviving folded arrivals (slots `base_n..`) on the
/// same peak key `LinkSim::inject` uses — in arrival order, so peak
/// ties land exactly as a tick-by-tick insertion would have — then
/// compact if due and fold the span into the hourly accumulators
/// (re-associated per session: the ≤1e-9 side of the exactness
/// contract; loss is exactly zero throughout a decoupled span) and the
/// clock.
fn commit_span(
    sim: &mut LinkSim,
    stats: &SpanStats,
    base_n: usize,
    rtt: f64,
    capacity: f64,
    span: usize,
    now_end: f64,
) {
    if stats.any_finished {
        let finished = &sim.finished;
        sim.by_peak.retain(|&i| !finished[i]);
    }
    {
        let peaks = sim.arena.peak_demands();
        for idx in base_n..sim.arena.len() {
            if !sim.finished[idx] {
                let peak = peaks[idx];
                let pos = sim.by_peak.partition_point(|&j| peaks[j] <= peak);
                sim.by_peak.insert(pos, idx);
            }
        }
    }
    if stats.any_finished && sim.arena.needs_compaction() {
        sim.arena.compact_stale(&mut sim.remap);
        let remap = &sim.remap;
        for o in &mut sim.by_peak {
            *o = remap[*o];
        }
    }
    sim.acc_util += stats.demand_ticks_bps / capacity;
    sim.acc_rtt += rtt * span as f64;
    sim.acc_conc += stats.alive_ticks as f64;
    sim.acc_ticks += span;
    sim.now_s = now_end;
}

/// Cursor over a link's routed arrival stream (sorted by global tick;
/// see [`crate::routing`]). Consuming an arrival converts the router's
/// pre-drawn randomness into the span representation: the same
/// [`SpanArrival`] the demand pre-scan would have produced, with the
/// peak priced from a clone of the forked stream. The cursor advances
/// monotonically, so — exactly like the demand RNG — each arrival's
/// randomness is consumed once, in tick order.
struct RoutedCursor<'a> {
    list: &'a [RoutedArrival],
    next: usize,
}

impl RoutedCursor<'_> {
    /// Append every arrival scheduled at global tick `tick` to `out`
    /// (tagged with span-local tick `span_tick`), returning the summed
    /// peak demand of the appended arrivals.
    fn take(
        &mut self,
        tick: u64,
        cfg: &StreamConfig,
        ladder: &Ladder,
        span_tick: u32,
        out: &mut Vec<SpanArrival>,
    ) -> f64 {
        let mut add_peak = 0.0;
        while let Some(a) = self.list.get(self.next) {
            debug_assert!(a.tick as u64 >= tick, "routed arrival skipped");
            if a.tick as u64 != tick {
                break;
            }
            let peak = clone_draw_peak(cfg, ladder, &a.rng);
            add_peak += peak;
            out.push(SpanArrival {
                tick: span_tick,
                treated: a.treated,
                rng: a.rng.clone(),
                peak,
            });
            self.next += 1;
        }
        add_peak
    }
}

/// The routed tick driver: the reference loop with the link's arrival
/// randomness replaced by the router's scheduled stream. Every tick is
/// [`LinkSim::step_tick_prescanned`] — the verbatim tick body minus the
/// demand draws — so the link's own RNG is never consumed.
pub(crate) fn run_tick_routed(
    mut sim: LinkSim,
    arrivals: &[RoutedArrival],
) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
    let horizon = sim.cfg.horizon_s();
    let mut cursor = RoutedCursor {
        list: arrivals,
        next: 0,
    };
    let mut buf: Vec<SpanArrival> = Vec::new();
    let mut tick = 0u64;
    while sim.now_s < horizon {
        buf.clear();
        cursor.take(tick, &sim.cfg, &sim.ladder, 0, &mut buf);
        sim.step_tick_prescanned(&buf);
        tick += 1;
    }
    if sim.acc_ticks > 0 {
        sim.flush_hour();
    }
    debug_assert_eq!(cursor.next, arrivals.len(), "unconsumed routed arrivals");
    (sim.records, sim.hourly)
}

/// The hybrid driver on a routed arrival stream (see
/// [`run_event_with`]).
pub(crate) fn run_event_routed(
    sim: LinkSim,
    arrivals: &[RoutedArrival],
) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
    run_event_with(
        sim,
        Some(RoutedCursor {
            list: arrivals,
            next: 0,
        }),
    )
}

/// The hybrid driver behind [`LinkSim::run_with`]
/// ([`EngineBackend::Event`]).
pub(crate) fn run_event(sim: LinkSim) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
    run_event_with(sim, None)
}

/// The hybrid tick/event driver, generic over where arrival randomness
/// comes from: `routed = None` draws the link's own demand process from
/// `sim.rng` (the pre-routing behavior, byte-for-byte); `Some(cursor)`
/// consumes a routed arrival stream instead and leaves `sim.rng`
/// untouched. The span machinery is identical either way because both
/// sources observe the same contract — each tick's arrival randomness
/// is materialized exactly once, in strictly increasing tick order
/// (the span-cap break consumes nothing, and the rollback tail replays
/// the already-materialized `folded` arrivals).
fn run_event_with(
    mut sim: LinkSim,
    mut routed: Option<RoutedCursor<'_>>,
) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
    let horizon = sim.cfg.horizon_s();
    let dt = sim.cfg.dt_s;
    let capacity = sim.link.capacity_bps();
    let fit_bound = sim.link.decoupled_fit_bound_bps();
    let optimistic_bound = capacity * OPTIMISTIC_BETA;
    let mut events: EventQueue<MacroEvent> = EventQueue::new();
    // `nows[k]` is the time at the start of span tick `k`, produced by
    // the same repeated `+= dt` the tick loop does so the floats every
    // replayed tick sees are bitwise the loop's own.
    let mut nows: Vec<f64> = Vec::new();
    // Pre-drawn arrivals folded into the current span (span-local tick
    // order), and the terminator tick's own unfoldable arrivals.
    let mut folded: Vec<SpanArrival> = Vec::new();
    let mut carry: Vec<SpanArrival> = Vec::new();
    // Scratch for routed coupled ticks (one tick's arrivals at a time).
    let mut coupled_buf: Vec<SpanArrival> = Vec::new();
    // Rollback backoff state (see [`BACKOFF_INITIAL_TICKS`]): run
    // `coupled_countdown` more ticks coupled before retrying optimism,
    // doubling `backoff` on each repeated failure; both reset when the
    // hour (and with it the arrival rate) changes.
    let mut coupled_countdown = 0u32;
    let mut backoff = BACKOFF_INITIAL_TICKS;
    let mut policy_hour = (usize::MAX, usize::MAX);

    'run: while sim.now_s < horizon {
        let day = DiurnalDemand::day_index(sim.now_s);
        let hour = DiurnalDemand::hour_of_day(sim.now_s);

        // Hour rollover, hoisted from the tick: a span can be the first
        // work of a new hour (when the boundary itself was crossed by
        // coupled ticks), and its ticks must land in the new window.
        // Coupled ticks re-check inside `step`; the check is idempotent.
        if (day, hour) != sim.current_hour && sim.acc_ticks > 0 {
            sim.flush_hour();
        }
        sim.current_hour = (day, hour);

        if (day, hour) != policy_hour {
            policy_hour = (day, hour);
            coupled_countdown = 0;
            backoff = BACKOFF_INITIAL_TICKS;
        }

        // Span-mode decision (see module docs). `None` = coupled,
        // `Some((None, Σpeak))` = guaranteed decoupled,
        // `Some((Some(bound), Σpeak))` = optimistic with post-hoc
        // validation against `bound`. The aggregate-peak sum is
        // O(population), so the coupled fast-outs come first: a
        // standing queue (peak hours are wall-to-wall coupled ticks) or
        // an open backoff window after a rollback skips it entirely.
        let mode = if sim.link.queue_depth_s() != 0.0 {
            None
        } else if coupled_countdown > 0 {
            coupled_countdown -= 1;
            None
        } else {
            let peaks = sim.arena.peak_demands();
            let total_peak: f64 = sim.by_peak.iter().map(|&i| peaks[i]).sum();
            if total_peak <= fit_bound {
                Some((None, total_peak))
            } else if total_peak <= optimistic_bound {
                // Current-demand gate: Σ peak over the fit bound is only
                // worth gambling on when the *actual* demand fits right
                // now — hovering load rarely recovers mid-span, and the
                // sum is O(population), paid only on this middle arm.
                let demands = sim.arena.demands();
                let total_demand: f64 = sim.by_peak.iter().map(|&i| demands[i]).sum();
                if total_demand <= fit_bound {
                    Some((Some(fit_bound), total_peak))
                } else {
                    None
                }
            } else {
                None
            }
        };
        let Some((validate, mut total_peak)) = mode else {
            match routed.as_mut() {
                None => sim.step(),
                Some(cursor) => {
                    let tick = (sim.now_s / dt).round() as u64;
                    coupled_buf.clear();
                    cursor.take(tick, &sim.cfg, &sim.ladder, 0, &mut coupled_buf);
                    sim.step_tick_prescanned(&coupled_buf);
                }
            }
            continue;
        };

        // Pre-scan the arrival process tick by tick — the tick loop's
        // own RNG draw order — folding each tick's arrivals into the
        // span while their (clone-priced) peak demands keep the span's
        // aggregate under the mode's bound. The span ends at the first
        // tick it cannot absorb: an arrival burst that breaks the
        // bound, an hour boundary, or the horizon. That terminator tick
        // is *not* replayed — it runs through the coupled loop after
        // the span commits, injecting the carried pre-drawn arrivals.
        let fold_bound = match validate {
            Some(_) => optimistic_bound,
            None => fit_bound,
        };
        let span_cap = match validate {
            Some(_) => OPT_SPAN_CAP,
            None => usize::MAX,
        };
        let p = sim.schedule.allocation(day);
        // Global tick index of the span's first tick, for the routed
        // cursor (dt is added repeatedly to `now_s`, so rounding absorbs
        // the accumulated ulps — far below half a tick over any horizon).
        let tick0 = (sim.now_s / dt).round() as u64;
        nows.clear();
        nows.push(sim.now_s);
        folded.clear();
        carry.clear();
        let mut k = 0usize;
        loop {
            let t = nows[k];
            if t >= horizon {
                events.push(SimTime::from_nanos(k as u64), MacroEvent::Horizon);
                break;
            }
            let (d, h) = (DiurnalDemand::day_index(t), DiurnalDemand::hour_of_day(t));
            if (d, h) != (day, hour) {
                events.push(SimTime::from_nanos(k as u64), MacroEvent::HourBoundary);
                // The boundary tick still draws its arrivals (the flush
                // consumes no randomness) — with *its* day's arm share,
                // which differs from the span's at midnight; FIFO
                // tie-breaking at equal times runs the flush first, as
                // the tick loop does.
                match routed.as_mut() {
                    None => {
                        let pb = sim.schedule.allocation(d);
                        let n = sim.demand.arrivals(t, dt, &mut sim.rng);
                        for _ in 0..n {
                            let treated = sim.rng.bernoulli(pb);
                            let rng = sim.rng.fork();
                            let peak = clone_draw_peak(&sim.cfg, &sim.ladder, &rng);
                            carry.push(SpanArrival {
                                tick: k as u32,
                                treated,
                                rng,
                                peak,
                            });
                        }
                    }
                    Some(cursor) => {
                        // The router already drew the boundary tick's
                        // arm Bernoullis with *its* day's allocation.
                        cursor.take(
                            tick0 + k as u64,
                            &sim.cfg,
                            &sim.ladder,
                            k as u32,
                            &mut carry,
                        );
                    }
                }
                events.push(SimTime::from_nanos(k as u64), MacroEvent::Arrivals);
                break;
            }
            if k >= span_cap {
                // Optimistic length cap: stop *before* consuming this
                // tick's randomness — the next span's pre-scan redraws
                // it at the same stream position. No terminator event.
                break;
            }
            let mark = folded.len();
            let add_peak = match routed.as_mut() {
                None => {
                    let n = sim.demand.arrivals(t, dt, &mut sim.rng);
                    let mut add = 0.0;
                    for _ in 0..n {
                        let treated = sim.rng.bernoulli(p);
                        let rng = sim.rng.fork();
                        let peak = clone_draw_peak(&sim.cfg, &sim.ladder, &rng);
                        add += peak;
                        folded.push(SpanArrival {
                            tick: k as u32,
                            treated,
                            rng,
                            peak,
                        });
                    }
                    add
                }
                Some(cursor) => cursor.take(
                    tick0 + k as u64,
                    &sim.cfg,
                    &sim.ladder,
                    k as u32,
                    &mut folded,
                ),
            };
            if folded.len() > mark {
                if total_peak + add_peak > fold_bound {
                    // Unfoldable burst: these arrivals terminate the
                    // span and run coupled as the terminator tick.
                    carry.extend(folded.drain(mark..));
                    events.push(SimTime::from_nanos(k as u64), MacroEvent::Arrivals);
                    break;
                }
                total_peak += add_peak;
            }
            nows.push(t + dt);
            k += 1;
        }

        // Replay the gap (the ticks strictly before the terminator).
        let span = nows.len() - 1;
        if span > 0 {
            let rtt = sim.link.rtt_s(); // empty queue: exactly base RTT
            let actx = SpanArrivalCtx {
                link_id: sim.link_id,
                day,
                hour,
                weekend: sim.demand.is_weekend(day),
                capacity_bps: capacity,
            };
            let base_n = sim.arena.len();
            match sim.arena.replay_span(
                &sim.cfg,
                &sim.ladder,
                rtt,
                &nows,
                dt,
                validate,
                &folded,
                &actx,
                &mut sim.records,
                &mut sim.finished,
            ) {
                SpanResult::Committed(stats) => {
                    commit_span(&mut sim, &stats, base_n, rtt, capacity, span, nows[span]);
                }
                SpanResult::RolledBack(kf) => {
                    // Validation failed at span tick `kf`; the arena is
                    // back at span entry. The prefix `[0, kf)` passed
                    // validation, so its decoupled fit is *proven*: an
                    // unvalidated re-replay (identical deterministic
                    // arithmetic, no undo, no gamble) salvages it.
                    // Only the tail runs coupled, injecting each tick's
                    // arrivals from the same pre-drawn randomness (the
                    // RNG stream is never re-consumed); back off before
                    // the next optimistic attempt.
                    coupled_countdown = backoff;
                    backoff = (backoff * 2).min(BACKOFF_MAX_TICKS);
                    let m = folded.partition_point(|a| (a.tick as usize) < kf);
                    if kf > 0 {
                        match sim.arena.replay_span(
                            &sim.cfg,
                            &sim.ladder,
                            rtt,
                            &nows[..kf + 1],
                            dt,
                            None,
                            &folded[..m],
                            &actx,
                            &mut sim.records,
                            &mut sim.finished,
                        ) {
                            SpanResult::Committed(stats) => {
                                commit_span(&mut sim, &stats, base_n, rtt, capacity, kf, nows[kf]);
                            }
                            SpanResult::RolledBack(_) => {
                                unreachable!("unvalidated replay cannot roll back")
                            }
                        }
                    }
                    let mut j = m;
                    for k in kf..span {
                        let mut g = j;
                        while g < folded.len() && folded[g].tick as usize == k {
                            g += 1;
                        }
                        sim.step_tick_prescanned(&folded[j..g]);
                        j = g;
                    }
                }
            }
        }

        // Dispatch the terminator in calendar order.
        while let Some((_, ev)) = events.pop() {
            match ev {
                MacroEvent::HourBoundary => {
                    // The flush half of the tick loop's hour rollover;
                    // the tick itself follows as a coincident
                    // `Arrivals` event.
                    let d = DiurnalDemand::day_index(sim.now_s);
                    let h = DiurnalDemand::hour_of_day(sim.now_s);
                    if (d, h) != sim.current_hour && sim.acc_ticks > 0 {
                        sim.flush_hour();
                    }
                    sim.current_hour = (d, h);
                }
                MacroEvent::Arrivals => sim.step_tick_prescanned(&carry),
                MacroEvent::Horizon => break 'run,
            }
        }
    }
    if sim.acc_ticks > 0 {
        sim.flush_hour();
    }
    if let Some(cursor) = &routed {
        debug_assert_eq!(cursor.next, cursor.list.len(), "unconsumed routed arrivals");
    }
    (sim.records, sim.hourly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::scenario::AllocationSchedule;
    use crate::session::LinkId;

    fn assert_identical(cfg: StreamConfig, schedule: AllocationSchedule, seed: u64) {
        let (rt, ht) = LinkSim::new(cfg.clone(), LinkId::One, schedule.clone(), seed).run();
        let (re, he) =
            LinkSim::new(cfg, LinkId::One, schedule, seed).run_with(EngineBackend::Event);
        assert_eq!(rt.len(), re.len(), "record counts");
        for (i, (a, b)) in rt.iter().zip(&re).enumerate() {
            assert_eq!(a.link, b.link, "record {i}");
            assert_eq!(
                (a.day, a.hour, a.weekend, a.treated),
                (b.day, b.hour, b.weekend, b.treated),
                "record {i}"
            );
            assert_eq!(
                a.arrival_s.to_bits(),
                b.arrival_s.to_bits(),
                "record {i} arrival"
            );
            assert_eq!(
                a.throughput_bps.to_bits(),
                b.throughput_bps.to_bits(),
                "record {i} throughput {} vs {}",
                a.throughput_bps,
                b.throughput_bps
            );
            assert_eq!(
                a.min_rtt_s.to_bits(),
                b.min_rtt_s.to_bits(),
                "record {i} min_rtt {} vs {}",
                a.min_rtt_s,
                b.min_rtt_s
            );
            assert_eq!(
                a.play_delay_s.to_bits(),
                b.play_delay_s.to_bits(),
                "record {i} play_delay"
            );
            assert_eq!(
                a.bitrate_bps.to_bits(),
                b.bitrate_bps.to_bits(),
                "record {i} bitrate"
            );
            assert_eq!(
                a.quality.to_bits(),
                b.quality.to_bits(),
                "record {i} quality"
            );
            assert_eq!(a.bytes.to_bits(), b.bytes.to_bits(), "record {i} bytes");
            assert_eq!(
                a.retx_bytes.to_bits(),
                b.retx_bytes.to_bits(),
                "record {i} retx"
            );
            assert_eq!(
                a.duration_s.to_bits(),
                b.duration_s.to_bits(),
                "record {i} duration"
            );
            assert_eq!(
                (a.rebuffer_count, a.rebuffered, a.cancelled, a.switches),
                (b.rebuffer_count, b.rebuffered, b.cancelled, b.switches),
                "record {i}"
            );
        }
        assert_eq!(ht.len(), he.len(), "hourly counts");
        for (a, b) in ht.iter().zip(&he) {
            assert_eq!((a.day, a.hour), (b.day, b.hour));
            let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
            assert!(
                close(a.utilization, b.utilization),
                "util {} vs {}",
                a.utilization,
                b.utilization
            );
            assert!(close(a.rtt_s, b.rtt_s), "rtt {} vs {}", a.rtt_s, b.rtt_s);
            assert!(
                close(a.concurrent, b.concurrent),
                "conc {} vs {}",
                a.concurrent,
                b.concurrent
            );
            assert!(close(a.loss, b.loss), "loss {} vs {}", a.loss, b.loss);
        }
    }

    /// Light load: most of the day runs as guaranteed decoupled spans.
    #[test]
    fn event_matches_tick_light_load() {
        let cfg = StreamConfig {
            days: 1,
            peak_arrivals_per_s: 0.24 * 0.05,
            capacity_bps: 400e6,
            mean_watch_s: 1500.0,
            ..Default::default()
        };
        assert_identical(cfg, AllocationSchedule::Constant(0.5), 11);
    }

    /// Congested: the default demand/capacity ratio forces the full
    /// mode mix — coupled peak hours, optimistic shoulders (with
    /// rollbacks), guaranteed troughs.
    #[test]
    fn event_matches_tick_congested() {
        let cfg = StreamConfig {
            days: 1,
            peak_arrivals_per_s: 0.24 * 0.2,
            capacity_bps: 200e6,
            mean_watch_s: 1500.0,
            ..Default::default()
        };
        assert_identical(cfg, AllocationSchedule::Constant(0.5), 7);
    }
}
