//! Diurnal session demand: a non-homogeneous Poisson arrival process.
//!
//! Demand follows the classic residential-broadband shape the paper's
//! Figure 6 shows: a night trough, a daytime ramp and an evening peak
//! during which the link congests. Weekends shift extra load into the
//! afternoon (the seasonality that biases event studies in §5.3).

use dessim::SimRng;

/// Hourly demand multipliers relative to the daily peak (index = local
/// hour 0–23). Peak hours are 19:00–22:00.
const HOURLY_SHAPE: [f64; 24] = [
    0.18, 0.12, 0.08, 0.06, 0.05, 0.06, 0.09, 0.14, 0.20, 0.26, 0.32, 0.38, //
    0.44, 0.48, 0.52, 0.56, 0.62, 0.72, 0.85, 0.96, 1.00, 0.98, 0.80, 0.45,
];

/// Extra weekend multiplier per hour (more daytime viewing).
const WEEKEND_BOOST: [f64; 24] = [
    1.05, 1.05, 1.0, 1.0, 1.0, 1.0, 1.0, 1.05, 1.15, 1.25, 1.30, 1.35, //
    1.35, 1.35, 1.30, 1.25, 1.20, 1.15, 1.10, 1.05, 1.05, 1.05, 1.05, 1.05,
];

/// The demand process.
#[derive(Debug, Clone)]
pub struct DiurnalDemand {
    /// Arrival rate at the weekday peak hour, sessions/second.
    pub peak_rate: f64,
    /// Day of week of simulation day 0 (0 = Monday … 6 = Sunday).
    pub start_weekday: usize,
}

impl DiurnalDemand {
    /// New demand curve with the given weekday-peak arrival rate.
    /// The paper's experiment ran Wednesday→Sunday, so day 0 defaults to
    /// Wednesday when constructed via [`DiurnalDemand::paper_week`].
    pub fn new(peak_rate: f64, start_weekday: usize) -> DiurnalDemand {
        DiurnalDemand {
            peak_rate,
            start_weekday: start_weekday % 7,
        }
    }

    /// Demand curve aligned with the paper's Wednesday-to-Sunday run.
    pub fn paper_week(peak_rate: f64) -> DiurnalDemand {
        DiurnalDemand::new(peak_rate, 2)
    }

    /// Local hour of day (0–23) for a simulation time in seconds.
    pub fn hour_of_day(t_s: f64) -> usize {
        ((t_s / 3600.0) as usize) % 24
    }

    /// Simulation day index for a time in seconds.
    pub fn day_index(t_s: f64) -> usize {
        (t_s / 86_400.0) as usize
    }

    /// Whether the given simulation day falls on a weekend.
    pub fn is_weekend(&self, day: usize) -> bool {
        let dow = (self.start_weekday + day) % 7;
        dow == 5 || dow == 6
    }

    /// Instantaneous arrival rate (sessions/second) at time `t_s`.
    pub fn rate(&self, t_s: f64) -> f64 {
        let hour = Self::hour_of_day(t_s);
        let day = Self::day_index(t_s);
        let mut r = self.peak_rate * HOURLY_SHAPE[hour];
        if self.is_weekend(day) {
            r *= WEEKEND_BOOST[hour];
        }
        r
    }

    /// Number of arrivals in a tick of length `dt_s` starting at `t_s`
    /// (Poisson draw; Knuth's method — rates here are ≤ a few per tick).
    pub fn arrivals(&self, t_s: f64, dt_s: f64, rng: &mut SimRng) -> usize {
        let lambda = self.rate(t_s) * dt_s;
        if lambda <= 0.0 {
            return 0;
        }
        // Knuth's algorithm is fine for λ up to ~30; clamp for safety.
        let lambda = lambda.min(30.0);
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.uniform01();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_hour_is_maximum() {
        let d = DiurnalDemand::new(1.0, 0);
        let peak = d.rate(20.0 * 3600.0); // 20:00 Monday
        for h in 0..24 {
            assert!(d.rate(h as f64 * 3600.0) <= peak + 1e-12, "hour {h}");
        }
        assert!((peak - 1.0).abs() < 1e-12);
    }

    #[test]
    fn night_trough_much_lower_than_peak() {
        let d = DiurnalDemand::new(1.0, 0);
        let trough = d.rate(4.0 * 3600.0);
        assert!(trough < 0.1);
    }

    #[test]
    fn weekend_days_detected() {
        // Start Wednesday: days 3 and 4 are Saturday/Sunday.
        let d = DiurnalDemand::paper_week(1.0);
        assert!(!d.is_weekend(0)); // Wed
        assert!(!d.is_weekend(1)); // Thu
        assert!(!d.is_weekend(2)); // Fri
        assert!(d.is_weekend(3)); // Sat
        assert!(d.is_weekend(4)); // Sun
    }

    #[test]
    fn weekend_daytime_demand_higher() {
        let d = DiurnalDemand::paper_week(1.0);
        let friday_noon = d.rate((2.0 * 24.0 + 12.0) * 3600.0);
        let saturday_noon = d.rate((3.0 * 24.0 + 12.0) * 3600.0);
        assert!(saturday_noon > friday_noon);
    }

    #[test]
    fn hour_and_day_indexing() {
        assert_eq!(DiurnalDemand::hour_of_day(0.0), 0);
        assert_eq!(DiurnalDemand::hour_of_day(3600.0 * 25.0), 1);
        assert_eq!(DiurnalDemand::day_index(86_399.0), 0);
        assert_eq!(DiurnalDemand::day_index(86_400.0), 1);
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let d = DiurnalDemand::new(2.0, 0);
        let mut rng = SimRng::new(5);
        let t = 20.0 * 3600.0; // peak, rate 2/s
        let n: usize = (0..20_000).map(|_| d.arrivals(t, 1.0, &mut rng)).sum();
        let mean = n as f64 / 20_000.0;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_rate_zero_arrivals() {
        let d = DiurnalDemand::new(0.0, 0);
        let mut rng = SimRng::new(5);
        assert_eq!(d.arrivals(0.0, 1.0, &mut rng), 0);
    }
}
