//! Cross-link session routing: the shared arrival layer that couples
//! fleet links together.
//!
//! The unrouted fleet gives every link an independent arrival process,
//! so link-level cluster randomization is unbiased *by construction* —
//! no session's experience depends on any other link's arm. Real CDNs
//! are not like that: each arriving session picks among k candidate
//! servers, so a treatment that changes one link's offered load (bitrate
//! capping does exactly that) changes *where future sessions go*, which
//! couples clusters through the router — the stochastic-congestion
//! spillover regime of Li–Johari–Kuang–Wager, with Schapira–Shahaf's
//! oblivious random-walk routing as the load-blind baseline policy.
//!
//! The router is a sequential pre-pass over the fleet's shared arrival
//! stream: one non-homogeneous Poisson process at the *sum* of the
//! per-link peak rates (the per-link demands share the same diurnal
//! shape, so the superposition is itself a [`DiurnalDemand`]), consumed
//! tick by tick from one seeded [`SimRng`]. Each arrival draws a home
//! link (weights ∝ `arrival_scale^imbalance`), considers the ring
//! segment of `k` candidates starting at its home, and the
//! [`RoutingPolicy`] picks the destination. The arrival's treatment
//! Bernoulli (under the *destination's* allocation schedule) and its
//! forked per-session RNG are drawn immediately, in stream order, so
//! the routed arrival stream — and therefore the whole routed fleet —
//! is a pure function of the router seed. Per-link *simulation* RNG
//! streams stay independent and untouched; the unrouted path does not
//! consume the router's stream at all, which is what keeps unrouted
//! fleets bit-identical to the pre-routing engine (pinned by
//! `tests/golden_unrouted.rs`).
//!
//! The load signal [`RoutingPolicy::LeastLoad`] reads is the router's
//! own demand estimate: each routed arrival deposits its expected
//! steady-state demand rate — the top ladder rung, or the treatment cap
//! for capped sessions — onto its destination. Crucially the estimate
//! is *slow*: it starts from the long-run demand forecast (warm start)
//! and decays on the traffic-engineering timescale
//! ([`RoutingConfig::memory_s`], days — real CDN routing reacts to
//! demand shifts over hours-to-days, not per-session). That
//! treated-vs-control deposit asymmetry is the interference channel:
//! under a *static* cluster split the capped links look persistently
//! cheap, the slow estimate drifts, and the router steers extra
//! sessions onto treated links for the whole horizon — eroding exactly
//! the cross-cluster independence that link-level designs rely on. A
//! fast-alternating switchback outpaces the router's memory: each
//! link's average deposit is the same, the slow estimate barely moves,
//! and the within-link contrast survives. With `k = 1` every session
//! stays on its home link and the coupling vanishes (the zero-spillover
//! endpoint of the `fleet_routing_spillover` figure).

use crate::config::StreamConfig;
use crate::demand::DiurnalDemand;
use crate::fleet::LinkSpec;
use crate::scenario::AllocationSchedule;
use dessim::SimRng;

/// How a routed session chooses among its k candidate links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Steer toward lightly-utilized candidates: each candidate is
    /// chosen with probability ∝ (capacity / load estimate)², so
    /// steering *strength* scales with the utilization gap (a hard
    /// per-session argmin would herd the entire shared stream onto
    /// whichever candidate looks marginally lighter — real traffic
    /// engineering splits flows in proportion to headroom). The policy
    /// that *reacts* to treatment-induced load differences — the
    /// strongest spillover channel.
    LeastLoad,
    /// Send to a candidate with probability proportional to its
    /// capacity. Load-blind, so clusters stay uncoupled in
    /// distribution, but the shared stream still correlates arrival
    /// counts across links.
    WeightedRandom,
    /// Oblivious random walk à la Schapira–Shahaf: start at a uniform
    /// candidate, take two ±1 steps on the candidate ring. Load-blind
    /// and capacity-blind.
    RandomWalkOblivious,
}

impl RoutingPolicy {
    /// All policies, in report order.
    pub const ALL: [RoutingPolicy; 3] = [
        RoutingPolicy::LeastLoad,
        RoutingPolicy::WeightedRandom,
        RoutingPolicy::RandomWalkOblivious,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::LeastLoad => "least-load",
            RoutingPolicy::WeightedRandom => "weighted-random",
            RoutingPolicy::RandomWalkOblivious => "random-walk (oblivious)",
        }
    }
}

/// Configuration of the shared arrival router.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingConfig {
    /// Destination-choice policy.
    pub policy: RoutingPolicy,
    /// Number of candidate links each session considers (clamped to the
    /// fleet size at routing time). `k = 1` pins every session to its
    /// home link: the zero-spillover endpoint.
    pub k: usize,
    /// Exponent on the per-link `arrival_scale` home weights: 0 spreads
    /// homes uniformly, 1 reproduces each link's natural share, larger
    /// values concentrate demand on the heavy links.
    pub imbalance: f64,
    /// Time constant (seconds) of the router's demand-estimate EWMA —
    /// the traffic-engineering reaction timescale. Deposits decay as
    /// `exp(-dt / memory_s)`, so arm patterns that alternate faster
    /// than this average out of the router's view while static splits
    /// shift it persistently. Defaults to
    /// [`DEFAULT_ROUTER_MEMORY_S`] (one week).
    pub memory_s: f64,
}

/// Default router demand-estimate time constant: one week, the
/// traffic-engineering timescale (peering shifts and DNS steering react
/// to sustained demand changes, not individual sessions — and much
/// slower than a daily switchback period, so alternating arm patterns
/// average out of the router's view).
pub const DEFAULT_ROUTER_MEMORY_S: f64 = 7.0 * 86_400.0;

impl RoutingConfig {
    /// A router with natural home weights (`imbalance = 1`) and the
    /// default demand-estimate memory.
    pub fn new(policy: RoutingPolicy, k: usize) -> RoutingConfig {
        RoutingConfig {
            policy,
            k,
            imbalance: 1.0,
            memory_s: DEFAULT_ROUTER_MEMORY_S,
        }
    }

    /// Check the parameters are usable: `k ≥ 1`, a finite non-negative
    /// imbalance exponent, and a finite positive memory.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("routing k must be at least 1".into());
        }
        if !self.imbalance.is_finite() || self.imbalance < 0.0 {
            return Err(format!(
                "routing imbalance must be finite and non-negative, got {}",
                self.imbalance
            ));
        }
        if !self.memory_s.is_finite() || self.memory_s <= 0.0 {
            return Err(format!(
                "routing memory_s must be finite and positive, got {}",
                self.memory_s
            ));
        }
        Ok(())
    }
}

/// One session the router has already placed: the global tick it
/// arrives at, its pre-drawn treatment Bernoulli (under the destination
/// link's schedule) and its forked, unconsumed per-session RNG stream.
/// The engine converts these into span arrivals when the link runs.
#[derive(Debug, Clone)]
pub struct RoutedArrival {
    pub(crate) tick: u32,
    pub(crate) treated: bool,
    pub(crate) rng: SimRng,
}

impl RoutedArrival {
    /// Global tick index (of the fleet base's `dt_s` grid) the session
    /// arrives at.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// Pre-drawn treatment arm.
    pub fn treated(&self) -> bool {
        self.treated
    }
}

/// Expected steady-state demand rate a routed arrival deposits on its
/// destination's load estimate: the top ladder rung, truncated to the
/// treatment cap for capped sessions. Treatment lowering this deposit
/// is *the* spillover mechanism under [`RoutingPolicy::LeastLoad`].
fn load_proxy_bps(base: &StreamConfig, treated: bool) -> f64 {
    let top = *base
        .ladder_bps
        .last()
        .expect("validated config has a non-empty ladder");
    if treated {
        base.cap_bps.min(top)
    } else {
        top
    }
}

/// Run the shared arrival router over the whole horizon: one seeded
/// sequential pass producing each link's scheduled arrival stream
/// (sorted by tick). Deterministic in `(base, specs, schedules,
/// routing, seed)`; the caller owns the seed discipline.
pub(crate) fn route_fleet(
    base: &StreamConfig,
    specs: &[LinkSpec],
    schedules: &[AllocationSchedule],
    routing: &RoutingConfig,
    seed: u64,
) -> Vec<Vec<RoutedArrival>> {
    assert_eq!(specs.len(), schedules.len());
    if let Err(e) = routing.validate() {
        panic!("route_fleet: {e}");
    }
    let n = specs.len();
    let k = routing.k.min(n);
    let dt = base.dt_s;
    let n_ticks = (base.horizon_s() / dt).round() as u64;

    // Superposed fleet demand: per-link diurnal processes share the
    // hourly shape, so their sum is one DiurnalDemand at Σ peak_i.
    let total_peak: f64 = specs
        .iter()
        .map(|s| base.peak_arrivals_per_s * s.arrival_scale)
        .sum();
    let demand = DiurnalDemand::paper_week(total_peak);

    // Cumulative home weights (∝ arrival_scale^imbalance).
    let weights: Vec<f64> = specs
        .iter()
        .map(|s| s.arrival_scale.powf(routing.imbalance))
        .collect();
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }
    let w_total = acc;

    // Per-link demand estimate with lazy exponential decay at the
    // traffic-engineering time constant (applied in powers when the
    // load is next read, so arrival-free ticks cost nothing). Warm
    // start at each link's steady-state uncapped forecast
    // `λ_i · top · τ` — without it the first day's deposits alone
    // would set the relative loads and the cold router would chase the
    // arm pattern even when it alternates.
    let decay = (-dt / routing.memory_s).exp();
    let top = *base
        .ladder_bps
        .last()
        .expect("validated config has a non-empty ladder");
    // Average diurnal demand runs at roughly 0.4× peak; only the shared
    // scale matters (scores are compared across links), the per-link
    // proportions come from the home weights.
    let avg_rate = 0.4 * total_peak;
    let mut loads: Vec<f64> = weights
        .iter()
        .map(|w| (w / w_total) * avg_rate * top * routing.memory_s)
        .collect();
    let mut loads_tick = 0u64;

    let mut rng = SimRng::new(seed);
    let mut out: Vec<Vec<RoutedArrival>> = vec![Vec::new(); n];
    for tick in 0..n_ticks {
        let t = tick as f64 * dt;
        let m = demand.arrivals(t, dt, &mut rng);
        if m == 0 {
            continue;
        }
        let elapsed = (tick - loads_tick) as i32;
        if elapsed > 0 {
            let d = decay.powi(elapsed);
            for load in &mut loads {
                *load *= d;
            }
        }
        loads_tick = tick;
        let day = DiurnalDemand::day_index(t);
        for _ in 0..m {
            let u = rng.uniform01() * w_total;
            let home = cum.partition_point(|&c| c <= u).min(n - 1);
            let dest = if k <= 1 {
                home
            } else {
                match routing.policy {
                    RoutingPolicy::LeastLoad => {
                        // Smoothed least-load: candidate weight
                        // ∝ 1/utilization² (loads are warm-started, so
                        // never zero). Steering scales with the gap
                        // instead of latching onto the argmin.
                        let weight = |cand: usize| {
                            let util = loads[cand] / specs[cand].capacity_bps;
                            (1.0 / util) * (1.0 / util)
                        };
                        let total: f64 = (0..k).map(|j| weight((home + j) % n)).sum();
                        let mut u = rng.uniform01() * total;
                        let mut pick = home;
                        for j in 0..k {
                            let cand = (home + j) % n;
                            pick = cand;
                            u -= weight(cand);
                            if u <= 0.0 {
                                break;
                            }
                        }
                        pick
                    }
                    RoutingPolicy::WeightedRandom => {
                        let total: f64 = (0..k).map(|j| specs[(home + j) % n].capacity_bps).sum();
                        let mut u = rng.uniform01() * total;
                        let mut pick = home;
                        for j in 0..k {
                            let cand = (home + j) % n;
                            pick = cand;
                            u -= specs[cand].capacity_bps;
                            if u <= 0.0 {
                                break;
                            }
                        }
                        pick
                    }
                    RoutingPolicy::RandomWalkOblivious => {
                        let mut pos = ((rng.uniform01() * k as f64) as usize).min(k - 1);
                        for _ in 0..2 {
                            pos = if rng.bernoulli(0.5) {
                                (pos + 1) % k
                            } else {
                                (pos + k - 1) % k
                            };
                        }
                        (home + pos) % n
                    }
                }
            };
            let treated = rng.bernoulli(schedules[dest].allocation(day));
            let child = rng.fork();
            loads[dest] += load_proxy_bps(base, treated);
            out[dest].push(RoutedArrival {
                tick: tick as u32,
                treated,
                rng: child,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StreamConfig {
        StreamConfig {
            days: 1,
            capacity_bps: 30e6,
            peak_arrivals_per_s: 0.24 * 0.03,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    fn specs(n: usize) -> Vec<LinkSpec> {
        crate::fleet::LinkPopulation::moderate(base(), n, 99).sample()
    }

    fn schedules(n: usize) -> Vec<AllocationSchedule> {
        (0..n)
            .map(|i| AllocationSchedule::Constant(if i % 2 == 0 { 0.95 } else { 0.05 }))
            .collect()
    }

    fn shape(streams: &[Vec<RoutedArrival>]) -> Vec<Vec<(u32, bool)>> {
        streams
            .iter()
            .map(|s| s.iter().map(|a| (a.tick, a.treated)).collect())
            .collect()
    }

    #[test]
    fn deterministic_in_seed() {
        let (b, s, sch) = (base(), specs(4), schedules(4));
        let cfg = RoutingConfig {
            memory_s: 7.0 * 86_400.0,
            ..RoutingConfig::new(RoutingPolicy::LeastLoad, 2)
        };
        let a = route_fleet(&b, &s, &sch, &cfg, 7);
        let c = route_fleet(&b, &s, &sch, &cfg, 7);
        assert_eq!(shape(&a), shape(&c));
        let d = route_fleet(&b, &s, &sch, &cfg, 8);
        assert_ne!(shape(&a), shape(&d));
    }

    #[test]
    fn streams_sorted_and_within_horizon() {
        let (b, s, sch) = (base(), specs(5), schedules(5));
        let n_ticks = (b.horizon_s() / b.dt_s).round() as u32;
        for policy in RoutingPolicy::ALL {
            let cfg = RoutingConfig::new(policy, 3);
            let streams = route_fleet(&b, &s, &sch, &cfg, 11);
            assert_eq!(streams.len(), 5);
            for stream in &streams {
                assert!(stream.windows(2).all(|w| w[0].tick <= w[1].tick));
                assert!(stream.iter().all(|a| a.tick < n_ticks));
            }
            assert!(streams.iter().map(Vec::len).sum::<usize>() > 0);
        }
    }

    #[test]
    fn k1_pins_home_identically_across_policies() {
        // With one candidate no policy draws extra randomness, so all
        // three produce the same stream bit-for-bit.
        let (b, s, sch) = (base(), specs(4), schedules(4));
        let streams: Vec<_> = RoutingPolicy::ALL
            .iter()
            .map(|&p| shape(&route_fleet(&b, &s, &sch, &RoutingConfig::new(p, 1), 13)))
            .collect();
        assert_eq!(streams[0], streams[1]);
        assert_eq!(streams[0], streams[2]);
    }

    #[test]
    fn imbalance_concentrates_homes() {
        let (b, mut s, sch) = (base(), specs(4), schedules(4));
        // Make link 0 the heavy one explicitly.
        s[0].arrival_scale = 3.0;
        for spec in &mut s[1..] {
            spec.arrival_scale = 0.5;
        }
        let count0 = |imb: f64| {
            let cfg = RoutingConfig {
                imbalance: imb,
                ..RoutingConfig::new(RoutingPolicy::WeightedRandom, 1)
            };
            route_fleet(&b, &s, &sch, &cfg, 17)[0].len()
        };
        assert!(count0(2.0) > count0(0.0));
    }

    #[test]
    fn least_load_avoids_small_link() {
        let (b, mut s, sch) = (base(), specs(2), schedules(2));
        s[0].capacity_bps = 1e6;
        s[1].capacity_bps = 100e6;
        s[0].arrival_scale = 1.0;
        s[1].arrival_scale = 1.0;
        let cfg = RoutingConfig {
            memory_s: 7.0 * 86_400.0,
            ..RoutingConfig::new(RoutingPolicy::LeastLoad, 2)
        };
        let streams = route_fleet(&b, &s, &sch, &cfg, 19);
        assert!(
            streams[1].len() > streams[0].len() * 3,
            "least-load should steer to the big link: {} vs {}",
            streams[1].len(),
            streams[0].len()
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(RoutingConfig::new(RoutingPolicy::LeastLoad, 0)
            .validate()
            .is_err());
        let bad = RoutingConfig {
            imbalance: f64::NAN,
            ..RoutingConfig::new(RoutingPolicy::LeastLoad, 2)
        };
        assert!(bad.validate().is_err());
        let stale = RoutingConfig {
            memory_s: 0.0,
            ..RoutingConfig::new(RoutingPolicy::LeastLoad, 2)
        };
        assert!(stale.validate().is_err());
    }

    #[test]
    fn slow_memory_chases_static_arms_but_not_alternating_ones() {
        // The interference mechanism in one test: under a *static*
        // 95/5 split the capped link's deposits run ~3× lighter, the
        // slow demand estimate drifts, and least-load steers extra
        // sessions onto the treated link. Under a daily-alternating
        // (staggered switchback) split each link's average deposit is
        // identical, so the slow router sees no persistent difference
        // and the steering differential collapses.
        let b = StreamConfig { days: 4, ..base() };
        let mut s = specs(2);
        // Identical twins so routing is the only asymmetry.
        s[1] = s[0].clone();
        let static_sch = vec![
            AllocationSchedule::Constant(0.95),
            AllocationSchedule::Constant(0.05),
        ];
        let alt_sch = vec![
            AllocationSchedule::PerDay(vec![0.95, 0.05, 0.95, 0.05]),
            AllocationSchedule::PerDay(vec![0.05, 0.95, 0.05, 0.95]),
        ];
        let cfg = RoutingConfig {
            memory_s: 7.0 * 86_400.0,
            ..RoutingConfig::new(RoutingPolicy::LeastLoad, 2)
        };
        let skew = |sch: &[AllocationSchedule]| {
            let streams = route_fleet(&b, &s, sch, &cfg, 23);
            let (a, c) = (streams[0].len() as f64, streams[1].len() as f64);
            (a - c).abs() / (a + c)
        };
        let static_skew = skew(&static_sch);
        let alt_skew = skew(&alt_sch);
        assert!(
            static_skew > 0.15,
            "static split should draw the router toward the capped link: skew {static_skew}"
        );
        assert!(
            alt_skew < static_skew / 2.0,
            "alternation should average out of the router's slow memory: \
             {alt_skew} vs {static_skew}"
        );
    }
}
