//! The video client: startup, playback-buffer dynamics, ABR decisions,
//! rebuffers, cancellation, and per-session metric accumulation.

use crate::abr::{perceptual_quality, Ladder};
use crate::config::StreamConfig;
use crate::session::{LinkId, SessionRecord};
use dessim::SimRng;

/// Client lifecycle phase.
///
/// Crate-visible so [`crate::arena::ClientArena`] can store it as a
/// one-byte column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Filling the initial buffer; playback has not begun.
    Startup,
    /// Playing (and, while the buffer has room, downloading).
    Playing,
    /// Buffer empty: stalled, refilling.
    Rebuffering,
}

/// One active video session.
///
/// This scalar struct is the **reference implementation**: the
/// production tick loop runs the struct-of-arrays [`crate::arena::ClientArena`],
/// which is property-tested to produce bit-identical session records to
/// stepping a `Client` directly. Fields are crate-visible so the arena
/// can decompose an admitted client into its columns.
#[derive(Debug, Clone)]
pub struct Client {
    pub(crate) link: LinkId,
    pub(crate) day: usize,
    pub(crate) hour: usize,
    pub(crate) weekend: bool,
    pub(crate) arrival_s: f64,
    pub(crate) treated: bool,

    pub(crate) phase: Phase,
    pub(crate) bitrate: f64,
    pub(crate) buffer_s: f64,
    pub(crate) watched_s: f64,
    pub(crate) watch_target_s: f64,
    pub(crate) patience_s: f64,

    /// Per-session access-line limit (bits/s).
    pub(crate) access_bps: f64,
    /// EWMA throughput estimate for ABR.
    pub(crate) throughput_est: f64,
    /// Per-chunk multiplicative noise on achievable throughput.
    pub(crate) chunk_noise: f64,
    /// Video seconds downloaded within the current chunk.
    pub(crate) chunk_progress_s: f64,

    // Accumulators.
    pub(crate) bytes: f64,
    pub(crate) retx_bytes: f64,
    /// Ticks lived so far; the volume-independent retransmission term is
    /// `fixed_retx_bytes_per_s · dt · ticks`, applied once at session
    /// end instead of accumulating float adds every tick.
    pub(crate) ticks_alive: u64,
    pub(crate) active_dl_s: f64,
    pub(crate) min_rtt_s: f64,
    pub(crate) play_delay_s: f64,
    pub(crate) rebuffer_count: u32,
    pub(crate) switches: u32,
    pub(crate) bitrate_time_product: f64,
    pub(crate) quality_time_product: f64,
    /// Playing ticks since the last bitrate change; the bitrate/quality
    /// time products fold one multiply per *segment* (bitrate changes
    /// only at chunk boundaries) instead of two per tick.
    pub(crate) seg_play_ticks: u64,

    pub(crate) noise_sigma: f64,
    pub(crate) dip_prob: f64,
    pub(crate) rng: SimRng,
}

/// What a client wants from the link this tick.
pub struct Demand {
    /// Desired download rate in bits/s (0 when idle).
    pub rate_bps: f64,
}

impl Client {
    /// Admit a new session at time `now_s`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: &StreamConfig,
        ladder: &Ladder,
        link: LinkId,
        day: usize,
        hour: usize,
        weekend: bool,
        now_s: f64,
        treated: bool,
        initial_share_bps: f64,
        mut rng: SimRng,
    ) -> Client {
        let watch_target_s = rng.exponential(1.0 / cfg.mean_watch_s).max(60.0);
        let patience_s = 5.0 + rng.exponential(1.0 / cfg.mean_patience_s);
        // Last-mile limit: lognormal around the configured median,
        // clamped to the transport ceiling.
        let access_bps = (cfg.access_median_bps * rng.lognormal(0.0, cfg.access_sigma))
            .clamp(ladder.min_rate() * 1.5, cfg.session_max_bps);
        // Noise is mean-one lognormal so volatility does not shift the
        // mean throughput.
        let sigma = cfg.throughput_noise_sigma;
        let draw_noise = |r: &mut SimRng| r.lognormal(-0.5 * sigma * sigma, sigma);
        // Initial estimate: the observable per-session share bounded by
        // the access line, degraded by a first noise draw.
        let noise = draw_noise(&mut rng);
        let throughput_est = (initial_share_bps.min(access_bps) * noise).max(ladder.min_rate());
        let cap = if treated { Some(cfg.cap_bps) } else { None };
        let bitrate = ladder.select(throughput_est, cfg.abr_safety, cap);
        let chunk_noise = draw_noise(&mut rng);
        Client {
            link,
            day,
            hour,
            weekend,
            arrival_s: now_s,
            treated,
            phase: Phase::Startup,
            bitrate,
            buffer_s: 0.0,
            watched_s: 0.0,
            watch_target_s,
            patience_s,
            access_bps,
            throughput_est,
            chunk_noise,
            chunk_progress_s: 0.0,
            bytes: 0.0,
            retx_bytes: 0.0,
            ticks_alive: 0,
            active_dl_s: 0.0,
            min_rtt_s: f64::INFINITY,
            play_delay_s: f64::NAN,
            rebuffer_count: 0,
            switches: 0,
            bitrate_time_product: 0.0,
            quality_time_product: 0.0,
            seg_play_ticks: 0,
            noise_sigma: sigma,
            dip_prob: (cfg.dip_prob * cfg.rebuffer_bias).min(0.5),
            rng,
        }
    }

    /// Whether the session is bitrate-capped.
    pub fn treated(&self) -> bool {
        self.treated
    }

    /// Desired download rate for this tick (bounded by the access line).
    ///
    /// Note the demand is *two-valued* over a session's lifetime: the
    /// constant access-capped rate while downloading, or zero while
    /// idling on a full playback buffer. `LinkSim` relies on this to
    /// maintain its demand-sorted allocation order without sorting.
    #[inline]
    pub fn demand(&self, cfg: &StreamConfig) -> Demand {
        let rate = match self.phase {
            Phase::Startup | Phase::Rebuffering => self.access_bps,
            Phase::Playing => {
                if self.buffer_s < cfg.max_buffer_s {
                    self.access_bps
                } else {
                    0.0 // buffer full: idle (on-off traffic)
                }
            }
        };
        Demand {
            rate_bps: rate.min(cfg.session_max_bps),
        }
    }

    /// Advance one tick given the allocated rate and current link state.
    /// Returns a finished [`SessionRecord`] when the session ends.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn step(
        &mut self,
        cfg: &StreamConfig,
        ladder: &Ladder,
        allocated_bps: f64,
        rtt_s: f64,
        loss: f64,
        now_s: f64,
        dt_s: f64,
    ) -> Option<SessionRecord> {
        let downloading = match self.phase {
            Phase::Startup | Phase::Rebuffering => true,
            Phase::Playing => self.buffer_s < cfg.max_buffer_s,
        };

        // Effective goodput: allocation degraded by per-chunk last-mile
        // noise (mean-one lognormal) and overload loss. Only computed
        // while downloading — idle sessions skip the whole block.
        let mut rate = 0.0;
        if downloading {
            rate = allocated_bps.min(self.access_bps) * self.chunk_noise * (1.0 - loss);
            if rate > 0.0 {
                let payload_bytes = rate * dt_s / 8.0;
                self.bytes += payload_bytes;
                // Retransmissions: volume-proportional (path loss floor +
                // damped overload loss) plus a volume-independent term.
                self.retx_bytes += payload_bytes * (cfg.loss_floor + loss * cfg.loss_to_retx);
                self.active_dl_s += dt_s;
                let video_s = rate * dt_s / self.bitrate;
                self.buffer_s += video_s;
                self.chunk_progress_s += video_s;
            }
        }
        self.ticks_alive += 1;
        self.min_rtt_s = self.min_rtt_s.min(rtt_s);

        // ABR decision at chunk boundaries.
        if self.chunk_progress_s >= cfg.chunk_s {
            self.chunk_progress_s = 0.0;
            if rate > 0.0 {
                self.throughput_est = 0.8 * self.throughput_est + 0.2 * rate;
            }
            let s = self.noise_sigma;
            // Single ziggurat draw: cheaper than half a banked
            // Box–Muller pair, and no spare state to carry. `fast_exp`
            // because this redraw fires tens of millions of times per
            // five-day run (the arena hot path computes the identical
            // expression, so equivalence is preserved).
            let z = self.rng.standard_normal();
            self.chunk_noise = dessim::fast_exp(-0.5 * s * s + s * z);
            // Rare difficulty dips: a transient collapse that can drain
            // the buffer (rebuffer driver independent of link congestion).
            if self.rng.bernoulli(self.dip_prob) {
                self.chunk_noise *= 0.12;
            }
            let cap = if self.treated {
                Some(cfg.cap_bps)
            } else {
                None
            };
            let next = ladder.select(self.throughput_est, cfg.abr_safety, cap);
            if next != self.bitrate {
                if self.phase != Phase::Startup && (next - self.bitrate).abs() > 1.0 {
                    self.switches += 1;
                }
                self.fold_products(dt_s);
                self.bitrate = next;
            }
        }

        match self.phase {
            Phase::Startup => {
                if self.buffer_s >= cfg.startup_buffer_s {
                    self.phase = Phase::Playing;
                    // Startup cost: fill time plus connection setup RTTs.
                    self.play_delay_s = (now_s - self.arrival_s) + 3.0 * rtt_s;
                } else if now_s - self.arrival_s > self.patience_s {
                    return Some(self.finish(cfg, dt_s, now_s, true));
                }
            }
            Phase::Playing => {
                self.watched_s += dt_s;
                self.buffer_s -= dt_s;
                self.seg_play_ticks += 1;
                if self.buffer_s <= 0.0 {
                    self.buffer_s = 0.0;
                    self.phase = Phase::Rebuffering;
                    self.rebuffer_count += 1;
                }
                if self.watched_s >= self.watch_target_s {
                    return Some(self.finish(cfg, dt_s, now_s, false));
                }
            }
            Phase::Rebuffering => {
                if self.buffer_s >= cfg.resume_buffer_s {
                    self.phase = Phase::Playing;
                }
            }
        }
        None
    }

    /// Fold the current constant-bitrate segment into the time-weighted
    /// products. Must run before `bitrate` changes and at session end.
    #[inline]
    fn fold_products(&mut self, dt_s: f64) {
        if self.seg_play_ticks > 0 {
            let t = self.seg_play_ticks as f64 * dt_s;
            self.bitrate_time_product += self.bitrate * t;
            self.quality_time_product += perceptual_quality(self.bitrate) * t;
            self.seg_play_ticks = 0;
        }
    }

    fn finish(
        &mut self,
        cfg: &StreamConfig,
        dt_s: f64,
        now_s: f64,
        cancelled: bool,
    ) -> SessionRecord {
        // Volume-independent retransmissions (connection upkeep, tail
        // losses), accrued once over the session's lifetime.
        self.retx_bytes += cfg.fixed_retx_bytes_per_s * dt_s * self.ticks_alive as f64;
        self.fold_products(dt_s);
        // Play time == watched seconds (playback advances exactly while
        // playing), so no separate accumulator is needed.
        let play = self.watched_s.max(1e-9);
        SessionRecord {
            link: self.link,
            day: self.day,
            hour: self.hour,
            weekend: self.weekend,
            arrival_s: self.arrival_s,
            treated: self.treated,
            throughput_bps: if self.active_dl_s > 0.0 {
                self.bytes * 8.0 / self.active_dl_s
            } else {
                0.0
            },
            min_rtt_s: if self.min_rtt_s.is_finite() {
                self.min_rtt_s
            } else {
                f64::NAN
            },
            play_delay_s: self.play_delay_s,
            bitrate_bps: if cancelled {
                f64::NAN
            } else {
                self.bitrate_time_product / play
            },
            quality: if cancelled {
                f64::NAN
            } else {
                self.quality_time_product / play
            },
            rebuffer_count: self.rebuffer_count,
            rebuffered: self.rebuffer_count > 0,
            cancelled,
            bytes: self.bytes,
            retx_bytes: self.retx_bytes,
            switches: self.switches,
            duration_s: now_s - self.arrival_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        // Generous, low-variance access lines so client-logic tests are
        // not confounded by last-mile draws.
        StreamConfig {
            access_median_bps: 20e6,
            access_sigma: 0.05,
            ..Default::default()
        }
    }

    fn make_client(treated: bool, share: f64, seed: u64) -> (Client, Ladder) {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let client = Client::new(
            &c,
            &ladder,
            LinkId::One,
            0,
            20,
            false,
            0.0,
            treated,
            share,
            SimRng::new(seed),
        );
        (client, ladder)
    }

    /// Run a client to completion with a fixed allocation.
    fn run_to_completion(
        mut client: Client,
        ladder: &Ladder,
        alloc: f64,
        rtt: f64,
        loss: f64,
    ) -> SessionRecord {
        let c = cfg();
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += 1.0;
            if let Some(rec) = client.step(&c, ladder, alloc, rtt, loss, t, 1.0) {
                return rec;
            }
        }
        panic!("session never finished");
    }

    #[test]
    fn healthy_session_plays_without_rebuffers() {
        let (client, ladder) = make_client(false, 20e6, 1);
        let rec = run_to_completion(client, &ladder, 20e6, 0.02, 0.0);
        assert!(!rec.cancelled);
        assert!(!rec.rebuffered, "rebuffers {}", rec.rebuffer_count);
        assert!(rec.play_delay_s < 12.0, "delay {}", rec.play_delay_s);
        assert!(rec.bitrate_bps >= 3_000e3, "bitrate {}", rec.bitrate_bps);
        assert!(rec.bytes > 0.0);
    }

    #[test]
    fn capped_session_limits_bitrate() {
        let (client, ladder) = make_client(true, 20e6, 2);
        let rec = run_to_completion(client, &ladder, 20e6, 0.02, 0.0);
        assert!(rec.treated);
        assert!(
            rec.bitrate_bps <= 1_750e3 + 1.0,
            "bitrate {}",
            rec.bitrate_bps
        );
        // Capped sessions pull fewer bytes.
        let (un, ladder2) = make_client(false, 20e6, 2);
        let rec_un = run_to_completion(un, &ladder2, 20e6, 0.02, 0.0);
        assert!(rec.bytes < rec_un.bytes * 0.8);
    }

    #[test]
    fn starved_session_rebuffers() {
        // Allocation below the lowest rung forces stalls.
        let (client, ladder) = make_client(false, 200e3, 3);
        let rec = run_to_completion(client, &ladder, 150e3, 0.05, 0.0);
        assert!(rec.cancelled || rec.rebuffered, "{rec:?}");
    }

    #[test]
    fn tiny_allocation_cancels_start() {
        let (client, ladder) = make_client(false, 100e3, 4);
        let rec = run_to_completion(client, &ladder, 10e3, 0.05, 0.0);
        assert!(rec.cancelled);
        assert!(rec.play_delay_s.is_nan());
    }

    #[test]
    fn min_rtt_tracks_smallest_seen() {
        let c = cfg();
        let (mut client, ladder) = make_client(false, 20e6, 5);
        let mut t = 0.0;
        for i in 0..100 {
            t += 1.0;
            let rtt = if i < 50 { 0.045 } else { 0.025 };
            if client.step(&c, &ladder, 20e6, rtt, 0.0, t, 1.0).is_some() {
                break;
            }
        }
        assert!((client.min_rtt_s - 0.025).abs() < 1e-12);
    }

    #[test]
    fn loss_generates_retransmissions() {
        let (client, ladder) = make_client(false, 20e6, 6);
        let rec = run_to_completion(client, &ladder, 20e6, 0.02, 0.05);
        // 5% overload loss plus floor: retx fraction near 5%.
        assert!(rec.retx_fraction() > 0.005, "{}", rec.retx_fraction());
        let (client2, ladder2) = make_client(false, 20e6, 6);
        let clean = run_to_completion(client2, &ladder2, 20e6, 0.02, 0.0);
        assert!(clean.retx_fraction() < rec.retx_fraction());
    }

    #[test]
    fn fixed_retx_dominates_when_volume_is_tiny() {
        // The volume-independent term makes % retransmitted rise when a
        // session downloads little — the Figure 9 off-peak mechanism.
        let (capped, ladder) = make_client(true, 20e6, 7);
        let rec_capped = run_to_completion(capped, &ladder, 20e6, 0.02, 0.0);
        let (full, ladder2) = make_client(false, 20e6, 7);
        let rec_full = run_to_completion(full, &ladder2, 20e6, 0.02, 0.0);
        assert!(
            rec_capped.retx_fraction() > rec_full.retx_fraction(),
            "capped {} vs full {}",
            rec_capped.retx_fraction(),
            rec_full.retx_fraction()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (c1, l1) = make_client(false, 10e6, 42);
        let (c2, l2) = make_client(false, 10e6, 42);
        let r1 = run_to_completion(c1, &l1, 10e6, 0.02, 0.0);
        let r2 = run_to_completion(c2, &l2, 10e6, 0.02, 0.0);
        assert_eq!(r1.bytes, r2.bytes);
        assert_eq!(r1.bitrate_bps, r2.bitrate_bps);
    }
}
