//! Per-session outcome records: the rows the experiment designs analyze.

/// Which link (cell) a session used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Link 1 (the 95%-treated cell in the main experiment).
    One,
    /// Link 2 (the 5%-treated cell).
    Two,
}

impl LinkId {
    /// Index (0 or 1) for array storage.
    pub fn index(self) -> usize {
        match self {
            LinkId::One => 0,
            LinkId::Two => 1,
        }
    }
}

/// Everything measured about one completed (or cancelled) video session.
///
/// One record corresponds to one experimental unit; fields mirror the
/// metrics in the paper's Figure 5.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Link the session used.
    pub link: LinkId,
    /// Simulation day of arrival (0-based).
    pub day: usize,
    /// Local hour of day at arrival (0–23).
    pub hour: usize,
    /// Whether the arrival day is a weekend day (demand model calendar;
    /// switchback analyses difference this out, §5.3).
    pub weekend: bool,
    /// Arrival time in seconds since simulation start.
    pub arrival_s: f64,
    /// Whether the session was in the treatment (bitrate-capped) arm.
    pub treated: bool,
    /// Average download throughput while actively downloading, bits/s.
    pub throughput_bps: f64,
    /// Minimum RTT observed during the session, seconds.
    pub min_rtt_s: f64,
    /// Startup delay (time to first frame), seconds; NaN if cancelled.
    pub play_delay_s: f64,
    /// Time-weighted average video bitrate, bits/s.
    pub bitrate_bps: f64,
    /// Average perceptual quality (0–100).
    pub quality: f64,
    /// Number of rebuffer events.
    pub rebuffer_count: u32,
    /// Whether playback was ever interrupted.
    pub rebuffered: bool,
    /// Whether the user gave up before playback started.
    pub cancelled: bool,
    /// Payload bytes downloaded.
    pub bytes: f64,
    /// Retransmitted bytes (modeled).
    pub retx_bytes: f64,
    /// Bitrate switches during playback (stability: fewer is better).
    pub switches: u32,
    /// Total session wall time, seconds.
    pub duration_s: f64,
}

impl SessionRecord {
    /// Fraction of sent bytes that were retransmitted.
    pub fn retx_fraction(&self) -> f64 {
        let sent = self.bytes + self.retx_bytes;
        if sent <= 0.0 {
            0.0
        } else {
            self.retx_bytes / sent
        }
    }

    /// Total bytes put on the wire (payload + retransmissions).
    pub fn sent_bytes(&self) -> f64 {
        self.bytes + self.retx_bytes
    }

    /// 1.0 if the session saw at least one rebuffer, else 0.0 (the
    /// "sessions with rebuffers" metric).
    pub fn rebuffer_indicator(&self) -> f64 {
        if self.rebuffered {
            1.0
        } else {
            0.0
        }
    }

    /// 1.0 if the start was cancelled, else 0.0.
    pub fn cancelled_indicator(&self) -> f64 {
        if self.cancelled {
            1.0
        } else {
            0.0
        }
    }
}

/// The named metrics of the §4 analysis, used to index extractors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Average download throughput.
    Throughput,
    /// Minimum RTT.
    MinRtt,
    /// Startup play delay.
    PlayDelay,
    /// Average video bitrate.
    Bitrate,
    /// Perceptual quality.
    Quality,
    /// Sessions-with-rebuffers indicator.
    RebufferSessions,
    /// Cancelled-starts indicator.
    CancelledStarts,
    /// Percentage of sent bytes retransmitted.
    RetxFraction,
    /// Total bytes sent.
    BytesSent,
    /// Bitrate switches (stability).
    Switches,
}

impl Metric {
    /// All metrics in report order.
    pub const ALL: [Metric; 10] = [
        Metric::Throughput,
        Metric::MinRtt,
        Metric::PlayDelay,
        Metric::Bitrate,
        Metric::Quality,
        Metric::RebufferSessions,
        Metric::CancelledStarts,
        Metric::RetxFraction,
        Metric::BytesSent,
        Metric::Switches,
    ];

    /// Human-readable name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Throughput => "avg throughput",
            Metric::MinRtt => "min RTT",
            Metric::PlayDelay => "play delay",
            Metric::Bitrate => "video bitrate",
            Metric::Quality => "perceptual quality",
            Metric::RebufferSessions => "sessions w/ rebuffers",
            Metric::CancelledStarts => "cancelled starts",
            Metric::RetxFraction => "% retransmitted bytes",
            Metric::BytesSent => "bytes sent",
            Metric::Switches => "bitrate switches",
        }
    }

    /// Whether larger values are better (used only for display arrows).
    pub fn higher_is_better(self) -> bool {
        matches!(self, Metric::Throughput | Metric::Bitrate | Metric::Quality)
    }

    /// Extract this metric from a record. Cancelled sessions contribute
    /// only to metrics defined for them (NaN elsewhere; analysis filters).
    pub fn of(self, r: &SessionRecord) -> f64 {
        match self {
            Metric::Throughput => r.throughput_bps,
            Metric::MinRtt => r.min_rtt_s,
            Metric::PlayDelay => r.play_delay_s,
            Metric::Bitrate => r.bitrate_bps,
            Metric::Quality => r.quality,
            Metric::RebufferSessions => r.rebuffer_indicator(),
            Metric::CancelledStarts => r.cancelled_indicator(),
            Metric::RetxFraction => r.retx_fraction(),
            Metric::BytesSent => r.sent_bytes(),
            Metric::Switches => r.switches as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SessionRecord {
        SessionRecord {
            link: LinkId::One,
            day: 0,
            hour: 20,
            weekend: false,
            arrival_s: 72_000.0,
            treated: true,
            throughput_bps: 5e6,
            min_rtt_s: 0.021,
            play_delay_s: 1.2,
            bitrate_bps: 1_750e3,
            quality: 66.0,
            rebuffer_count: 2,
            rebuffered: true,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e6,
            switches: 3,
            duration_s: 1800.0,
        }
    }

    #[test]
    fn retx_fraction_math() {
        let r = record();
        assert!((r.retx_fraction() - 1e6 / 101e6).abs() < 1e-12);
        assert_eq!(r.sent_bytes(), 101e6);
    }

    #[test]
    fn indicators() {
        let r = record();
        assert_eq!(r.rebuffer_indicator(), 1.0);
        assert_eq!(r.cancelled_indicator(), 0.0);
    }

    #[test]
    fn metric_extractors_cover_all() {
        let r = record();
        for m in Metric::ALL {
            let v = m.of(&r);
            assert!(v.is_finite(), "{:?}", m);
        }
        assert_eq!(Metric::Throughput.of(&r), 5e6);
        assert_eq!(Metric::Switches.of(&r), 3.0);
    }

    #[test]
    fn zero_bytes_zero_retx_fraction() {
        let mut r = record();
        r.bytes = 0.0;
        r.retx_bytes = 0.0;
        assert_eq!(r.retx_fraction(), 0.0);
    }

    #[test]
    fn link_indexing() {
        assert_eq!(LinkId::One.index(), 0);
        assert_eq!(LinkId::Two.index(), 1);
    }
}
