//! Golden bit-identity oracle for the *unrouted* fleet path.
//!
//! The routed arrival layer must not perturb the existing per-link
//! independent-RNG-stream model: an unrouted `FleetSim` has to produce
//! bit-for-bit the output it produced before the routing layer existed.
//! The fingerprints below were captured from the pre-routing tree; any
//! change to them means the unrouted path consumed randomness
//! differently, which is a correctness regression, not a tuning knob.

use streamsim::fleet::LinkPopulation;
use streamsim::{EngineBackend, FleetDesign, FleetSim, StreamConfig};

/// FNV-1a over the bit patterns of every field of every record, in
/// record order, per link — order-sensitive on purpose.
fn fleet_fingerprint(backend: EngineBackend) -> Vec<(usize, u64)> {
    let base = StreamConfig {
        days: 1,
        capacity_bps: 30e6,
        peak_arrivals_per_s: 0.24 * 0.03,
        mean_watch_s: 1500.0,
        ..StreamConfig::default()
    };
    let specs = LinkPopulation::moderate(base.clone(), 6, 99).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let run = FleetSim::new(&base, &specs, &design, 4242).run_with(backend);
    run.links
        .iter()
        .map(|l| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut fold = |bits: u64| {
                h ^= bits;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            for r in &l.sessions {
                fold(r.day as u64);
                fold(r.hour as u64);
                fold(u64::from(r.weekend));
                fold(u64::from(r.treated));
                fold(r.arrival_s.to_bits());
                fold(r.throughput_bps.to_bits());
                fold(r.min_rtt_s.to_bits());
                fold(r.play_delay_s.to_bits());
                fold(r.bitrate_bps.to_bits());
                fold(r.quality.to_bits());
                fold(u64::from(r.rebuffer_count));
                fold(u64::from(r.rebuffered));
                fold(u64::from(r.cancelled));
                fold(r.bytes.to_bits());
                fold(r.retx_bytes.to_bits());
                fold(u64::from(r.switches));
                fold(r.duration_s.to_bits());
            }
            (l.sessions.len(), h)
        })
        .collect()
}

/// Pinned from the pre-routing tree (seed 4242, 6 links, 1 day); both
/// engine backends produced this exact sequence.
const GOLDEN: &[(usize, u64)] = &[
    (172, 10554555751685637845),
    (418, 10044311625472744327),
    (254, 9796580364085095406),
    (153, 8636536805496112193),
    (328, 2437992545112592698),
    (633, 14261223267095498218),
];

#[test]
fn unrouted_fleet_matches_pre_routing_golden() {
    for (backend, name) in [
        (EngineBackend::Tick, "tick"),
        (EngineBackend::Event, "event"),
    ] {
        let got = fleet_fingerprint(backend);
        assert_eq!(got.as_slice(), GOLDEN, "{name} backend drifted from golden");
    }
}
