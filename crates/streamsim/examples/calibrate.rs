// Scratch calibration: baseline similarity + capping effect at defaults.
use streamsim::config::StreamConfig;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::LinkId;
use streamsim::sim::{LinkSim, PairedSim};

fn main() {
    let cfg = StreamConfig {
        days: 1,
        ..Default::default()
    };
    // Baseline paired: no treatment.
    let paired = PairedSim::with_paper_biases(
        cfg.clone(),
        [AllocationSchedule::none(), AllocationSchedule::none()],
        7,
    );
    let run = paired.run();
    let (l1, l2): (Vec<_>, Vec<_>) = run.sessions.iter().partition(|r| r.link == LinkId::One);
    let mean = |v: &Vec<&streamsim::SessionRecord>,
                f: &dyn Fn(&streamsim::SessionRecord) -> f64| {
        v.iter()
            .map(|r| f(r))
            .filter(|x| x.is_finite())
            .sum::<f64>()
            / v.len() as f64
    };
    println!(
        "n: {} vs {} (ratio {:.3})",
        l1.len(),
        l2.len(),
        l1.len() as f64 / l2.len() as f64
    );
    for (name, f) in [
        (
            "tput",
            (&|r: &streamsim::SessionRecord| r.throughput_bps)
                as &dyn Fn(&streamsim::SessionRecord) -> f64,
        ),
        ("minrtt", &|r| r.min_rtt_s),
        ("bitrate", &|r| r.bitrate_bps),
        ("rebuf", &|r| r.rebuffer_indicator()),
        ("cancel", &|r| r.cancelled_indicator()),
        ("retx%", &|r| r.retx_fraction()),
        ("delay", &|r| r.play_delay_s),
    ] {
        let a = mean(&l1, f);
        let b = mean(&l2, f);
        println!("{name}: l1 {a:.5} l2 {b:.5} ratio {:.3}", a / b);
    }
    // Peak congestion profile, uncapped vs capped.
    for (label, p) in [("uncapped", 0.0), ("capped95", 0.95)] {
        let sim = LinkSim::new(cfg.clone(), LinkId::One, AllocationSchedule::Constant(p), 3);
        let (recs, hourly) = sim.run();
        let util: Vec<f64> = hourly
            .iter()
            .map(|h| (h.utilization * 100.0).round() / 100.0)
            .collect();
        let rtt: Vec<f64> = hourly.iter().map(|h| (h.rtt_s * 1e3).round()).collect();
        let tput = recs.iter().map(|r| r.throughput_bps).sum::<f64>() / recs.len() as f64;
        println!("{label}: tput {:.2}M util {:?}", tput / 1e6, &util[14..24]);
        println!("   rtt(ms) {:?}", &rtt[14..24]);
    }
}
