//! Distributional agreement between the ziggurat `standard_normal`
//! (the hot-path sampler) and the retained Box–Muller reference: both
//! must draw from the same standard normal, checked on moments, tail
//! mass, and a two-sample Kolmogorov–Smirnov statistic over random
//! seeds. The ziggurat accept/reject structure makes its draw sequence
//! differ from Box–Muller's by construction, so the comparison is
//! distributional, not bitwise.

use dessim::SimRng;
use proptest::prelude::*;

fn summarize(xs: &[f64]) -> (f64, f64, f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let skew = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
    let kurt = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
    (mean, var, skew, kurt)
}

/// Two-sample KS statistic (both samples sorted in place).
fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mean/variance/skewness/kurtosis of the ziggurat sampler match
    /// the Box–Muller reference (and the theoretical 0/1/0/3) across
    /// seeds.
    #[test]
    fn ziggurat_moments_match_reference(seed in 0u64..1_000_000) {
        let n = 120_000;
        let mut zig = SimRng::new(seed);
        let mut reference = SimRng::new(seed.wrapping_add(0x9E37_79B9));
        let zs: Vec<f64> = (0..n).map(|_| zig.standard_normal()).collect();
        let bs: Vec<f64> = (0..n).map(|_| reference.standard_normal_boxmuller()).collect();
        let (zm, zv, zs3, zk) = summarize(&zs);
        let (bm, bv, _, _) = summarize(&bs);
        prop_assert!(zm.abs() < 0.02, "ziggurat mean {zm}");
        prop_assert!((zv - 1.0).abs() < 0.03, "ziggurat var {zv}");
        prop_assert!(zs3.abs() < 0.05, "ziggurat skew {zs3}");
        prop_assert!((zk - 3.0).abs() < 0.15, "ziggurat kurtosis {zk}");
        prop_assert!((zm - bm).abs() < 0.03, "means diverge: {zm} vs {bm}");
        prop_assert!((zv - bv).abs() < 0.06, "variances diverge: {zv} vs {bv}");
    }

    /// Tail mass beyond 1σ/2σ/3σ matches the normal CDF for both
    /// samplers — the ziggurat's rare tail path must contribute the
    /// right probability, not just *some* extreme values.
    #[test]
    fn ziggurat_tail_mass_matches_reference(seed in 0u64..1_000_000) {
        let n = 200_000usize;
        let mut zig = SimRng::new(seed);
        let mut reference = SimRng::new(seed.wrapping_add(1));
        let tail_frac = |xs: &[f64], t: f64| {
            xs.iter().filter(|x| x.abs() > t).count() as f64 / xs.len() as f64
        };
        let zs: Vec<f64> = (0..n).map(|_| zig.standard_normal()).collect();
        let bs: Vec<f64> = (0..n).map(|_| reference.standard_normal_boxmuller()).collect();
        // Two-sided normal tail masses: 2(1 − Φ(t)).
        for (t, expect, tol) in [
            (1.0, 0.3173, 0.01),
            (2.0, 0.0455, 0.004),
            (3.0, 0.0027, 0.001),
        ] {
            let z = tail_frac(&zs, t);
            let b = tail_frac(&bs, t);
            prop_assert!((z - expect).abs() < tol, "zig tail(|x|>{t}) = {z}, expect {expect}");
            prop_assert!((z - b).abs() < 2.0 * tol, "tails diverge at {t}: {z} vs {b}");
        }
    }

    /// Two-sample KS test between ziggurat and Box–Muller draws: the
    /// statistic must stay below the ~1e-3 significance threshold for
    /// equal-size samples (c(α)·sqrt(2/n) with c ≈ 1.95).
    #[test]
    fn ziggurat_ks_against_reference(seed in 0u64..1_000_000) {
        let n = 100_000usize;
        let mut zig = SimRng::new(seed);
        let mut reference = SimRng::new(seed.wrapping_add(7));
        let mut zs: Vec<f64> = (0..n).map(|_| zig.standard_normal()).collect();
        let mut bs: Vec<f64> = (0..n).map(|_| reference.standard_normal_boxmuller()).collect();
        let d = ks_statistic(&mut zs, &mut bs);
        let threshold = 1.95 * (2.0 / n as f64).sqrt();
        prop_assert!(d < threshold, "KS statistic {d} >= {threshold}");
    }

    /// `normal`/`lognormal` route through the ziggurat and keep their
    /// parameterization: mean-one lognormal noise must stay mean-one
    /// (the simulator's volatility-without-bias invariant).
    #[test]
    fn lognormal_noise_stays_mean_one(seed in 0u64..1_000_000, sigma in 0.05f64..0.8) {
        let n = 150_000;
        let mut rng = SimRng::new(seed);
        let mean = (0..n)
            .map(|_| rng.lognormal(-0.5 * sigma * sigma, sigma))
            .sum::<f64>() / n as f64;
        // Lognormal sample means converge slowly for large sigma; the
        // tolerance scales with the distribution's own sd.
        let sd = ((sigma * sigma).exp() - 1.0).sqrt();
        prop_assert!((mean - 1.0).abs() < 5.0 * sd / (n as f64).sqrt() + 0.01,
            "lognormal mean {mean} (sigma {sigma})");
    }
}
