//! Property-based tests on the telemetry wire model: a bounded-window
//! shuffle with duplicate copies, pushed through the receiver-side
//! [`ReorderBuffer`], must reproduce the clean in-order stream exactly —
//! so a [`FleetLinkSummary`] folded over the repaired stream is
//! bit-identical to one folded over the stream the simulator emitted.
//!
//! This is the estimator-facing half of the guarantee the telemetry
//! module proves internally (buffer capacity `2W + 2` never force-emits
//! past a record displaced by at most `W`): not just "same multiset of
//! records", but identical fold order, hence identical Welford cells and
//! quantile sketches under `PartialEq`.

use dessim::rng::SimRng;
use proptest::prelude::*;
use streamsim::fleet::{FleetLinkRun, LinkSpec};
use streamsim::session::LinkId;
use streamsim::telemetry::ReorderBuffer;
use streamsim::{SessionRecord, TelemetryStats};
use unbiased::fleet::{FleetLinkSummary, DEFAULT_SKETCH_CAP};

/// A synthetic record whose metric fields vary with `seq`, so summary
/// cells and sketches actually depend on stream content and order.
fn record(seq: usize, rng: &mut SimRng) -> SessionRecord {
    SessionRecord {
        link: LinkId::One,
        day: seq / 24,
        hour: seq % 24,
        weekend: (seq / 24) % 7 >= 5,
        arrival_s: seq as f64 * 10.0 + rng.uniform01(),
        treated: rng.bernoulli(0.5),
        throughput_bps: 2e6 + 6e6 * rng.uniform01(),
        min_rtt_s: 0.01 + 0.05 * rng.uniform01(),
        play_delay_s: 0.5 + 2.0 * rng.uniform01(),
        bitrate_bps: 5e5 + 5e6 * rng.uniform01(),
        quality: 100.0 * rng.uniform01(),
        rebuffer_count: (rng.uniform01() * 3.0) as u32,
        rebuffered: rng.bernoulli(0.2),
        cancelled: false,
        bytes: 1e7 + 2e8 * rng.uniform01(),
        retx_bytes: 1e5 * rng.uniform01(),
        switches: (rng.uniform01() * 5.0) as u32,
        duration_s: 300.0 + 1200.0 * rng.uniform01(),
    }
}

fn stream(n: usize, seed: u64) -> Vec<SessionRecord> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|i| record(i, &mut rng)).collect()
}

/// Put `clean` on the wire: each record (and, with probability `dup_p`,
/// a duplicate copy) gets a sort key displaced forward by at most
/// `window`, mimicking the jitter model in `streamsim::telemetry`.
/// Returns `(wire arrivals, duplicate copies injected)`.
fn wire_shuffle(
    clean: &[SessionRecord],
    window: u64,
    dup_p: f64,
    seed: u64,
) -> (Vec<(u64, SessionRecord)>, u64) {
    let mut rng = SimRng::new(seed ^ 0xD1B5);
    let mut wire: Vec<(u64, u64, SessionRecord)> = Vec::with_capacity(clean.len());
    let mut dups = 0u64;
    for (seq, r) in clean.iter().enumerate() {
        let seq = seq as u64;
        if rng.bernoulli(dup_p) {
            dups += 1;
            wire.push((seq + rng.below(window + 1), seq, r.clone()));
        }
        wire.push((seq + rng.below(window + 1), seq, r.clone()));
    }
    wire.sort_by_key(|&(key, _, _)| key);
    (wire.into_iter().map(|(_, seq, r)| (seq, r)).collect(), dups)
}

/// Run wire arrivals through a receiver buffer sized for the window.
fn repair(wire: Vec<(u64, SessionRecord)>, window: u64) -> (Vec<SessionRecord>, u64, u64) {
    let mut buffer = ReorderBuffer::new(2 * window as usize + 2);
    let mut delivered = Vec::with_capacity(wire.len());
    for (seq, r) in wire {
        buffer.push(seq, r, &mut delivered);
    }
    let (duplicates, late_drops) = buffer.finish(&mut delivered);
    (delivered, duplicates, late_drops)
}

/// Fold records into a link summary the way a fleet sweep does.
fn summarize(sessions: Vec<SessionRecord>) -> FleetLinkSummary {
    let n = sessions.len();
    let run = FleetLinkRun {
        link: 3,
        spec: LinkSpec {
            link: 3,
            capacity_bps: 30e6,
            base_rtt_s: 0.03,
            arrival_scale: 1.0,
            watch_scale: 1.0,
        },
        treated_cluster: None,
        offered_load: 1.0,
        expected_allocation: 0.5,
        schedule: streamsim::scenario::AllocationSchedule::Constant(0.5),
        sessions,
        hourly: Vec::new(),
        telemetry: TelemetryStats {
            sent: [n as u64, 0],
            delivered: [n as u64, 0],
            ..TelemetryStats::default()
        },
    };
    FleetLinkSummary::from_run(&run, DEFAULT_SKETCH_CAP)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An adequately sized reorder buffer fully repairs any bounded-
    /// window shuffle with duplicates: the delivered stream is the clean
    /// stream bit-for-bit, every duplicate copy is discarded exactly
    /// once, and nothing is late-dropped.
    #[test]
    fn reorder_buffer_repairs_bounded_shuffle(
        n in 1usize..300,
        window in 0u64..40,
        dup_p in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let clean = stream(n, seed);
        let (wire, dups) = wire_shuffle(&clean, window, dup_p, seed);
        let (delivered, discarded, late) = repair(wire, window);
        prop_assert_eq!(late, 0, "buffer of 2W+2 never late-drops");
        prop_assert_eq!(discarded, dups, "each duplicate discarded once");
        prop_assert_eq!(delivered.len(), clean.len());
        for (a, b) in delivered.iter().zip(&clean) {
            prop_assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
            prop_assert_eq!(a.throughput_bps.to_bits(), b.throughput_bps.to_bits());
            prop_assert_eq!(a.treated, b.treated);
        }
    }

    /// The estimator-facing consequence: a `FleetLinkSummary` folded
    /// over the shuffled-then-repaired stream equals (PartialEq, i.e.
    /// bit-exact cells and sketches) the summary folded over the sorted
    /// clean stream. Telemetry mangling that the receiver repairs is
    /// invisible to every downstream estimate.
    #[test]
    fn link_summary_unchanged_by_repaired_wire_shuffle(
        n in 1usize..300,
        window in 0u64..40,
        dup_p in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let clean = stream(n, seed);
        let (wire, _) = wire_shuffle(&clean, window, dup_p, seed ^ 0x9E37);
        let (delivered, _, late) = repair(wire, window);
        prop_assert_eq!(late, 0);
        let from_clean = summarize(clean);
        let from_wire = summarize(delivered);
        prop_assert_eq!(from_clean, from_wire);
    }

    /// Without the reorder buffer, the same shuffle generally does NOT
    /// leave the summary invariant once duplicates are in play: the
    /// duplicated records are double-counted. This pins down that the
    /// invariance above is earned by the receiver, not vacuous.
    #[test]
    fn raw_wire_with_duplicates_inflates_summary(
        n in 50usize..200,
        window in 1u64..20,
        seed in 0u64..10_000,
    ) {
        let clean = stream(n, seed);
        let (wire, dups) = wire_shuffle(&clean, window, 0.4, seed);
        // At dup_p = 0.4 over >= 50 records a duplicate-free draw is
        // essentially impossible, but guard anyway (no prop_assume in
        // the shim): the property is only about streams with duplicates.
        if dups > 0 {
            let raw: Vec<SessionRecord> = wire.into_iter().map(|(_, r)| r).collect();
            let from_clean = summarize(clean);
            let from_raw = summarize(raw);
            prop_assert_eq!(from_raw.n_sessions, from_clean.n_sessions + dups as usize);
            prop_assert_ne!(from_raw, from_clean);
        }
    }
}
