//! Closed-form unit tests for the `expstats` kernels: every expected
//! value below is derived by hand (derivations in comments), so these
//! tests pin the estimators to textbook definitions rather than to the
//! implementation's own output.

use expstats::dist::t_cdf;
use expstats::ols::{DesignBuilder, Ols};
use expstats::quantiles::{quantile, quantile_sorted};
use expstats::{welch_t_test, CovEstimator};

/// Simple regression of y on x with x = 0..4, y = [1.1, 1.9, 3.2, 3.8, 5.0].
///
/// x̄ = 2, ȳ = 3, Sxx = Σ(x−x̄)² = 10,
/// Sxy = Σ(x−x̄)(y−ȳ) = (−2)(−1.9) + (−1)(−1.1) + 0(0.2) + 1(0.8) + 2(2.0) = 9.7,
/// slope = Sxy/Sxx = 0.97, intercept = ȳ − slope·x̄ = 1.06,
/// RSS = 0.091, s² = RSS/(n−2) = 0.091/3,
/// SE(slope) = √(s²/Sxx) = 0.0550757054728611….
#[test]
fn ols_simple_regression_closed_form() {
    let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
    let ys = [1.1, 1.9, 3.2, 3.8, 5.0];
    let x = DesignBuilder::new()
        .intercept(5)
        .unwrap()
        .column("x", &xs)
        .unwrap()
        .build()
        .unwrap();
    let fit = Ols::fit(x, &ys).unwrap();
    assert!(
        (fit.coef[0] - 1.06).abs() < 1e-12,
        "intercept {}",
        fit.coef[0]
    );
    assert!((fit.coef[1] - 0.97).abs() < 1e-12, "slope {}", fit.coef[1]);
    assert!((fit.rss() - 0.091).abs() < 1e-12, "rss {}", fit.rss());
    let se = fit.std_errors(CovEstimator::Classic).unwrap()[1];
    assert!((se - 0.055075705472861).abs() < 1e-12, "se {se}");
}

/// Two-regressor design solved by hand via the normal equations.
///
/// With x1 = [1, 2, 3, 4], x2 = [1, 0, 1, 0] and
/// y = 2 + 3·x1 − 4·x2 exactly, OLS must reproduce the coefficients to
/// machine precision (zero residual ⇒ unique exact solution since the
/// design has full rank).
#[test]
fn ols_two_regressors_exact() {
    let x1 = [1.0, 2.0, 3.0, 4.0];
    let x2 = [1.0, 0.0, 1.0, 0.0];
    let ys: Vec<f64> = x1
        .iter()
        .zip(&x2)
        .map(|(a, b)| 2.0 + 3.0 * a - 4.0 * b)
        .collect();
    let x = DesignBuilder::new()
        .intercept(4)
        .unwrap()
        .column("x1", &x1)
        .unwrap()
        .column("x2", &x2)
        .unwrap()
        .build()
        .unwrap();
    let fit = Ols::fit(x, &ys).unwrap();
    assert!((fit.coef[0] - 2.0).abs() < 1e-10);
    assert!((fit.coef[1] - 3.0).abs() < 1e-10);
    assert!((fit.coef[2] - (-4.0)).abs() < 1e-10);
}

/// Newey–West lag-2 on the intercept-only model, fully by hand.
///
/// y = [1, 2, 4, 8, 16], ȳ = 6.2, residuals u = [−5.2, −4.2, −2.2, 1.8, 9.8].
/// Bartlett weights for lag 2: w₁ = 2⁄3, w₂ = 1⁄3.
/// S = Σu² + w₁·2·Σ uₜuₜ₋₁ + w₂·2·Σ uₜuₜ₋₂
///   Σu²        = 27.04 + 17.64 + 4.84 + 3.24 + 96.04 = 148.8
///   Σ uₜuₜ₋₁   = 21.84 + 9.24 − 3.96 + 17.64 = 44.76
///   Σ uₜuₜ₋₂   = 11.44 − 7.56 − 21.56 = −17.68
/// S = 148.8 + (2/3)·89.52 + (1/3)·(−35.36) = 196.6266…
/// Var = (XᵀX)⁻¹ S (XᵀX)⁻¹ · n/(n−k) = S/25 · 5/4 = S/20,
/// SE = √(S/20) = 3.1360272107663016.
#[test]
fn newey_west_lag2_hand_computed() {
    let ys = [1.0, 2.0, 4.0, 8.0, 16.0];
    let x = DesignBuilder::new().intercept(5).unwrap().build().unwrap();
    let fit = Ols::fit(x, &ys).unwrap();
    assert!((fit.coef[0] - 6.2).abs() < 1e-12);
    let se = fit.std_errors(CovEstimator::NeweyWest { lag: 2 }).unwrap()[0];
    assert!((se - 3.1360272107663016).abs() < 1e-12, "NW se {se}");

    // Independent recomputation from the definition, as a second check.
    let u: Vec<f64> = ys.iter().map(|y| y - 6.2).collect();
    let mut s: f64 = u.iter().map(|v| v * v).sum();
    for lag in 1..=2usize {
        let w = 1.0 - lag as f64 / 3.0;
        let gamma: f64 = (lag..5).map(|t| u[t] * u[t - lag]).sum();
        s += 2.0 * w * gamma;
    }
    let expected = (s / 25.0 * (5.0 / 4.0)).sqrt();
    assert!((se - expected).abs() < 1e-12);
}

/// Welch's t on a fixed dataset, against the hand-worked statistic.
///
/// With the samples below: x̄₁ = 20.82, x̄₂ = 23.6071…,
/// SE = √(s₁²/n₁ + s₂²/n₂), t = (x̄₁−x̄₂)/SE = −2.7077777791…,
/// Welch–Satterthwaite df = 26.9527465….
#[test]
fn welch_t_textbook_case() {
    let a = [
        27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4,
    ];
    let b = [
        27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
    ];
    let res = welch_t_test(&a, &b).unwrap();
    assert!(
        (res.statistic - (-2.707777779103324)).abs() < 1e-10,
        "t {}",
        res.statistic
    );
    assert!(
        (res.dof - 26.952746503270305).abs() < 1e-9,
        "df {}",
        res.dof
    );
    // p must match the t CDF at that statistic/df.
    let p = 2.0 * (1.0 - t_cdf(res.statistic.abs(), res.dof));
    assert!((res.p_value - p).abs() < 1e-12);
    assert!(
        res.p_value < 0.05 && res.p_value > 0.005,
        "p {}",
        res.p_value
    );
}

/// R-type-7 linear interpolation: h = (n−1)q, interpolate between
/// floor(h) and ceil(h).
#[test]
fn quantile_interpolation_closed_form() {
    let v = [10.0, 20.0, 30.0, 40.0];
    // h = 3·0.25 = 0.75 ⇒ 10 + 0.75·(20−10) = 17.5
    assert_eq!(quantile_sorted(&v, 0.25), 17.5);
    // h = 3·0.5 = 1.5 ⇒ 20 + 0.5·10 = 25
    assert_eq!(quantile_sorted(&v, 0.5), 25.0);
    // Exact index: h = 3·(2/3) = 2 ⇒ element 2.
    assert_eq!(quantile_sorted(&v, 2.0 / 3.0), 30.0);
}

#[test]
fn quantile_edge_cases() {
    // Endpoints are min and max.
    let v = [3.0, 1.0, 2.0];
    assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
    assert_eq!(quantile(&v, 1.0).unwrap(), 3.0);
    // Single element: every quantile is that element.
    for q in [0.0, 0.37, 0.5, 1.0] {
        assert_eq!(quantile_sorted(&[7.0], q), 7.0);
    }
    // Two elements interpolate linearly: q=0.1 ⇒ 1 + 0.1·(5−1).
    assert!((quantile_sorted(&[1.0, 5.0], 0.1) - 1.4).abs() < 1e-12);
    // Ties: quantile between equal values stays at the tied value.
    assert_eq!(quantile_sorted(&[2.0, 2.0, 2.0, 9.0], 0.5), 2.0);
    // Empty sample is an error.
    assert!(quantile(&[], 0.5).is_err());
}
