//! Property tests on the TCP sender state machine: sequence-space and
//! scoreboard invariants must hold under arbitrary ACK streams.

use dessim::{SimDuration, SimTime};
use netsim::config::CcKind;
use netsim::packet::{Ack, AppId, FlowId, SackBlock, MAX_SACK_BLOCKS};
use netsim::tcp::Sender;
use proptest::prelude::*;

fn sender(cc: CcKind) -> Sender {
    Sender::new(
        FlowId(0),
        AppId(0),
        cc,
        false,
        1.2,
        1500,
        SimDuration::from_millis(20),
        SimDuration::from_millis(200),
    )
}

/// A scripted ACK: cumulative point (as an offset to apply) plus an
/// optional SACK range, both clamped to valid sequence space by the test.
#[derive(Debug, Clone)]
struct AckScript {
    cum_advance: u64,
    sack_lo: u64,
    sack_len: u64,
    fire_rto: bool,
}

fn ack_script() -> impl Strategy<Value = AckScript> {
    (0u64..4, 0u64..30, 0u64..8, prop::bool::weighted(0.05)).prop_map(
        |(cum_advance, sack_lo, sack_len, fire_rto)| AckScript {
            cum_advance,
            sack_lo,
            sack_len,
            fire_rto,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any ACK/SACK/RTO interleaving:
    /// * `high_ack <= next_seq` (via `outstanding()` not underflowing),
    /// * `pipe() <= outstanding()`,
    /// * delivered counter is monotone,
    /// * every returned packet is within the valid sequence space.
    #[test]
    fn sender_invariants_hold(
        cc_pick in 0usize..3,
        scripts in prop::collection::vec(ack_script(), 1..60),
    ) {
        let cc = [CcKind::Reno, CcKind::Cubic, CcKind::Bbr][cc_pick];
        let mut s = sender(cc);
        let mut now = SimTime::ZERO;
        let mut cum = 0u64;
        let mut delivered_prev = 0u64;
        s.start(now);
        for script in scripts {
            now += SimDuration::from_millis(7);

            if script.fire_rto {
                if let Some(d) = s.rto_deadline() {
                    let pkts = s.on_rto_fire(d.max(now));
                    now = now.max(d);
                    for p in &pkts {
                        prop_assert!(p.seq < 10_000_000);
                    }
                }
            }

            // Build a plausible ACK: cumulative point advances by at most
            // what is outstanding; SACK range sits above the cum point.
            let outstanding_before = s.outstanding();
            cum += script.cum_advance.min(outstanding_before);
            let next = cum + outstanding_before;
            let mut sacks = [None; MAX_SACK_BLOCKS];
            if script.sack_len > 0 && next > cum + 1 {
                let lo = (cum + 1 + script.sack_lo % (next - cum - 1)).min(next - 1);
                let hi = (lo + script.sack_len).min(next);
                if hi > lo {
                    sacks[0] = Some(SackBlock { start: lo, end: hi });
                }
            }
            let ack = Ack {
                flow: FlowId(0),
                cum_ack: cum,
                for_seq: cum.saturating_sub(1),
                sacks,
                echo_sent_at: Some(SimTime::ZERO),
            };
            let pkts = s.on_ack(now, ack);

            // Invariants.
            prop_assert!(s.pipe() <= s.outstanding(), "pipe {} > outstanding {}", s.pipe(), s.outstanding());
            prop_assert!(s.counters.segs_delivered >= delivered_prev);
            delivered_prev = s.counters.segs_delivered;
            prop_assert!(s.counters.segs_retx <= s.counters.segs_sent);
            for p in &pkts {
                prop_assert!(p.seq >= cum, "sent {} below cum {}", p.seq, cum);
            }
        }
    }

    /// The receiver's cumulative point is monotone and never runs ahead
    /// of the highest sequence it has seen, for any arrival order.
    #[test]
    fn receiver_cum_ack_monotone(seqs in prop::collection::vec(0u64..64, 1..200)) {
        use netsim::packet::Packet;
        use netsim::tcp::Receiver;
        let mut r = Receiver::new(FlowId(0));
        let mut last_cum = 0;
        let mut max_seen = 0;
        for seq in seqs {
            max_seen = max_seen.max(seq);
            let d = r.on_segment(&Packet {
                flow: FlowId(0),
                seq,
                size_bytes: 1500,
                is_retx: false,
                sent_at: SimTime::ZERO,
            });
            if let Some(ack) = d.ack {
                prop_assert!(ack.cum_ack >= last_cum);
                prop_assert!(ack.cum_ack <= max_seen + 1);
                last_cum = ack.cum_ack;
            }
        }
    }
}
