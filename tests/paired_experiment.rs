//! Integration: the full §4 pipeline — streaming substrate, paired-link
//! design, Appendix-B analysis — shows congestion interference.

use streamsim::session::Metric;
use streamsim::StreamConfig;
use unbiased::designs::{paired_link_effects, PairedLinkDesign};

fn small_world(days: usize) -> StreamConfig {
    StreamConfig {
        days,
        capacity_bps: 200e6,
        peak_arrivals_per_s: 0.048,
        ..Default::default()
    }
}

#[test]
fn naive_ab_understates_capping_benefit() {
    let out = PairedLinkDesign::paper(small_world(3), 77).run();
    let tput = paired_link_effects(&out.data, Metric::Throughput).unwrap();
    // The cross-link TTE must exceed both within-link naive estimates:
    // capping helps everyone on the capped link, which within-link
    // comparisons cannot see.
    assert!(
        tput.tte.relative > tput.naive_hi.relative + 0.02,
        "TTE {:+.3} vs naive95 {:+.3}",
        tput.tte.relative,
        tput.naive_hi.relative
    );
    assert!(
        tput.tte.relative > tput.naive_lo.relative + 0.02,
        "TTE {:+.3} vs naive5 {:+.3}",
        tput.tte.relative,
        tput.naive_lo.relative
    );
}

#[test]
fn bitrate_effect_dominated_by_direct_cap() {
    // §4.3: "the majority of the reduction in bitrate comes from the
    // artificial cap" — naive estimates and TTE agree on sign and rough
    // size for bitrate.
    let out = PairedLinkDesign::paper(small_world(3), 78).run();
    let e = paired_link_effects(&out.data, Metric::Bitrate).unwrap();
    assert!(e.tte.relative < -0.15, "TTE {:+.3}", e.tte.relative);
    assert!(
        e.naive_lo.relative < -0.1,
        "naive5 {:+.3}",
        e.naive_lo.relative
    );
    assert!(
        e.naive_hi.relative < -0.1,
        "naive95 {:+.3}",
        e.naive_hi.relative
    );
    assert!(!e.sign_flip());
}

#[test]
fn spillover_positive_for_uncapped_traffic_throughput() {
    let out = PairedLinkDesign::paper(small_world(3), 79).run();
    let e = paired_link_effects(&out.data, Metric::Throughput).unwrap();
    // Control sessions on the mostly-capped link do at least as well as
    // control sessions on the mostly-uncapped link.
    assert!(
        e.spillover.relative > -0.05,
        "spillover {:+.3}",
        e.spillover.relative
    );
}
