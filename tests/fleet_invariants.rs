//! Property tests for the fleet layer: the stratified paired design
//! must always produce a perfect matching (every participating link in
//! exactly one pair, one treated and one control per pair) that is
//! balanced on the stratifying covariate.

use proptest::prelude::*;
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, LinkPopulation};

fn base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 50e6,
        peak_arrivals_per_s: 0.24 * 0.05,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over arbitrary population shapes and assignment seeds, the
    /// stratified pairing is a perfect matching: every link except (for
    /// odd fleets) the sitting-out median appears in exactly one pair,
    /// each pair holds one treated and one control cluster, and the two
    /// arms' covariate means are balanced to within the per-pair
    /// adjacency bound.
    #[test]
    fn stratified_pairing_is_a_balanced_perfect_matching(
        n in 2usize..40,
        cap_sigma in 0.05f64..0.9,
        demand_sigma in 0.05f64..0.6,
        pop_seed in 0u64..1000,
        assign_seed in 0u64..1000,
    ) {
        let base = base();
        let pop = LinkPopulation {
            capacity_sigma: cap_sigma,
            demand_sigma,
            ..LinkPopulation::moderate(base.clone(), n, pop_seed)
        };
        let specs = pop.sample();
        let design = FleetDesign::StratifiedPairs { p_hi: 0.95, p_lo: 0.05 };
        let plan = design.plan(&specs, &base, assign_seed);

        // Perfect matching: every link in exactly one pair (odd fleets
        // sit exactly one link out, and it is untreated).
        prop_assert_eq!(plan.pairs.len(), n / 2);
        let mut uses = vec![0usize; n];
        for &(t, c) in &plan.pairs {
            uses[t] += 1;
            uses[c] += 1;
            prop_assert_eq!(plan.cluster_treated[t], Some(true));
            prop_assert_eq!(plan.cluster_treated[c], Some(false));
            prop_assert!(plan.schedules[t].allocation(0) > plan.schedules[c].allocation(0));
        }
        let sitting_out = uses.iter().filter(|&&u| u == 0).count();
        prop_assert_eq!(sitting_out, n % 2);
        prop_assert!(uses.iter().all(|&u| u <= 1));
        if n % 2 == 1 {
            let idx = uses.iter().position(|&u| u == 0).unwrap();
            prop_assert_eq!(plan.schedules[idx].allocation(0), 0.0);
        }

        // Covariate balance: partners are adjacent in sorted covariate
        // order, so the arm-mean gap is at most the mean within-pair
        // gap, which is itself at most (max − min) / n_pairs. Assert
        // that bound with a little slack for float accumulation.
        if !plan.pairs.is_empty() {
            let load = |i: usize| specs[i].offered_load_index(&base);
            let t_mean = plan.pairs.iter().map(|&(t, _)| load(t)).sum::<f64>()
                / plan.pairs.len() as f64;
            let c_mean = plan.pairs.iter().map(|&(_, c)| load(c)).sum::<f64>()
                / plan.pairs.len() as f64;
            let paired: Vec<f64> = plan
                .pairs
                .iter()
                .flat_map(|&(t, c)| [load(t), load(c)])
                .collect();
            let max = paired.iter().cloned().fold(f64::MIN, f64::max);
            let min = paired.iter().cloned().fold(f64::MAX, f64::min);
            let bound = (max - min) / plan.pairs.len() as f64 + 1e-12;
            prop_assert!(
                (t_mean - c_mean).abs() <= bound,
                "arm covariate gap {} exceeds adjacency bound {}",
                (t_mean - c_mean).abs(),
                bound
            );
        }
    }
}
