//! Property-based tests on the statistical and causal kernels.

use causal::assignment::Assignment;
use causal::potential::{NoInterference, PotentialOutcomes};
use expstats::ols::{DesignBuilder, Ols};
use expstats::{mean, CovEstimator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OLS on y = a + b x recovers (a, b) exactly for any non-degenerate
    /// inputs.
    #[test]
    fn ols_recovers_exact_line(a in -100.0f64..100.0, b in -10.0f64..10.0, n in 5usize..50) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let x = DesignBuilder::new()
            .intercept(n).unwrap()
            .column("x", &xs).unwrap()
            .build().unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        prop_assert!((fit.coef[0] - a).abs() < 1e-6);
        prop_assert!((fit.coef[1] - b).abs() < 1e-6);
    }

    /// Newey-West variances are non-negative for arbitrary inputs
    /// (Bartlett kernel PSD guarantee).
    #[test]
    fn newey_west_psd(seed in 0u64..1000, lag in 0usize..8) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = DesignBuilder::new()
            .intercept(n).unwrap()
            .column("x", &xs).unwrap()
            .build().unwrap();
        if let Ok(fit) = Ols::fit(x, &ys) {
            let cov = fit.covariance(CovEstimator::NeweyWest { lag }).unwrap();
            prop_assert!(cov[(0, 0)] >= -1e-9);
            prop_assert!(cov[(1, 1)] >= -1e-9);
        }
    }

    /// Without interference, the realized A/B difference in means equals
    /// the constant effect plus pure sampling noise in the baselines —
    /// and is exact when baselines are constant.
    #[test]
    fn naive_ab_exact_under_sutva_constant_baseline(
        effect in -50.0f64..50.0,
        p in 0.2f64..0.8,
        seed in 0u64..500,
    ) {
        let model = NoInterference { baselines: vec![7.0; 200], effect };
        let assign = Assignment::bernoulli(200, p, seed);
        if assign.treated_count() >= 2 && assign.control().len() >= 2 {
            let y: Vec<f64> = (0..200).map(|i| model.outcome(i, &assign)).collect();
            let t: Vec<f64> = assign.treated().into_iter().map(|i| y[i]).collect();
            let c: Vec<f64> = assign.control().into_iter().map(|i| y[i]).collect();
            prop_assert!((mean(&t) - mean(&c) - effect).abs() < 1e-9);
        }
    }

    /// Complete randomization always treats exactly k units.
    #[test]
    fn complete_randomization_exact_count(n in 2usize..200, seed in 0u64..100) {
        let k = n / 2;
        let a = Assignment::complete(n, k, seed);
        prop_assert_eq!(a.treated_count(), k);
    }
}
