//! Property tests on the distribution kernels (CIs depend on them).

use expstats::dist::{inc_beta, norm_cdf, norm_ppf, t_cdf, t_ppf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// norm_ppf is the exact inverse of norm_cdf over (0, 1).
    #[test]
    fn normal_round_trip(p in 1e-6f64..0.999999) {
        let x = norm_ppf(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
    }

    /// The normal CDF is monotone non-decreasing.
    #[test]
    fn normal_cdf_monotone(a in -8.0f64..8.0, d in 0.0f64..4.0) {
        prop_assert!(norm_cdf(a + d) >= norm_cdf(a) - 1e-15);
    }

    /// Student-t round trip across degrees of freedom.
    #[test]
    fn t_round_trip(p in 0.001f64..0.999, df in 1.0f64..200.0) {
        let x = t_ppf(p, df);
        prop_assert!((t_cdf(x, df) - p).abs() < 1e-7, "p={p} df={df} x={x}");
    }

    /// t is symmetric: CDF(-x) = 1 - CDF(x).
    #[test]
    fn t_symmetry(x in 0.0f64..20.0, df in 1.0f64..100.0) {
        prop_assert!((t_cdf(-x, df) + t_cdf(x, df) - 1.0).abs() < 1e-10);
    }

    /// Incomplete beta is a CDF in x: bounded and monotone.
    #[test]
    fn inc_beta_is_cdf(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..1.0, d in 0.0f64..0.2) {
        let v = inc_beta(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v));
        let hi = (x + d).min(1.0);
        prop_assert!(inc_beta(a, b, hi) >= v - 1e-10);
    }

    /// Heavier-tailed t has fatter tails than the normal.
    #[test]
    fn t_tails_heavier_than_normal(x in 1.5f64..8.0, df in 1.0f64..30.0) {
        prop_assert!(1.0 - t_cdf(x, df) >= (1.0 - norm_cdf(x)) - 1e-12);
    }
}
