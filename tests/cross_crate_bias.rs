//! Integration: the packet simulator (netsim) + causal estimators show
//! the §3.1 bias end to end, and the closed-form model predicts the
//! simulated magnitudes.

use causal::potential::{FairShare, PotentialOutcomes};
use dessim::SimDuration;
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use netsim::run_dumbbell;

fn lab(k_two_conn: usize, seed: u64) -> netsim::LabResult {
    let apps: Vec<AppConfig> = (0..10)
        .map(|i| AppConfig {
            connections: if i < k_two_conn { 2 } else { 1 },
            cc: CcKind::Reno,
            paced: false,
            pacing_ca_factor: 1.2,
        })
        .collect();
    let cfg = DumbbellConfig {
        bottleneck_bps: 100e6,
        base_rtt: SimDuration::from_millis(20),
        apps,
        duration: SimDuration::from_secs(25),
        warmup: SimDuration::from_secs(8),
        seed,
        ..Default::default()
    };
    run_dumbbell(&cfg).expect("valid config")
}

#[test]
fn packet_sim_matches_fair_share_model_prediction() {
    // Closed-form model: with k of n apps doubled, treated get
    // 2C/(n+k), control C/(n+k).
    let model = FairShare {
        n: 10,
        capacity: 100e6,
        weight_treated: 2.0,
        weight_control: 1.0,
    };
    let k = 3;
    let res = lab(k, 5);
    let treated: f64 = res.apps[..k].iter().map(|a| a.throughput_bps).sum::<f64>() / k as f64;
    let control: f64 =
        res.apps[k..].iter().map(|a| a.throughput_bps).sum::<f64>() / (10 - k) as f64;
    let assign = causal::Assignment::from_vec((0..10).map(|i| i < k).collect());
    let predicted_t = model.mean_treated(&assign);
    let predicted_c = model.mean_control(&assign);
    // The packet simulator should land within 30% of the fluid
    // prediction for each arm (TCP fairness is approximate).
    assert!(
        (treated / predicted_t - 1.0).abs() < 0.3,
        "treated {treated:.0} vs predicted {predicted_t:.0}"
    );
    assert!(
        (control / predicted_c - 1.0).abs() < 0.3,
        "control {control:.0} vs predicted {predicted_c:.0}"
    );
}

#[test]
fn ab_contrast_large_but_tte_zero_in_packet_sim() {
    let mixed = lab(5, 6);
    let t: f64 = mixed.apps[..5]
        .iter()
        .map(|a| a.throughput_bps)
        .sum::<f64>()
        / 5.0;
    let c: f64 = mixed.apps[5..]
        .iter()
        .map(|a| a.throughput_bps)
        .sum::<f64>()
        / 5.0;
    assert!(t / c > 1.5, "A/B contrast should be large: {:.2}", t / c);

    let all_one = lab(0, 7);
    let all_two = lab(10, 8);
    let m1: f64 = all_one.apps.iter().map(|a| a.throughput_bps).sum::<f64>() / 10.0;
    let m2: f64 = all_two.apps.iter().map(|a| a.throughput_bps).sum::<f64>() / 10.0;
    let tte = m2 / m1 - 1.0;
    assert!(
        tte.abs() < 0.1,
        "TTE(throughput) should be ~0, got {tte:+.2}"
    );
}
