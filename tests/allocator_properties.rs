//! Property tests for the streamsim allocation hot path: the
//! scratch-buffer allocator (`FluidLink::allocate_into`, which reuses an
//! incrementally repaired sort permutation across calls) must be
//! **bit-identical** to the allocating reference (`max_min_share`) over
//! arbitrary demand sequences with arrivals, exits, idle toggles and
//! rate changes — plus the water-filling invariants themselves.

use dessim::SimRng;
use proptest::prelude::*;
use streamsim::link::{max_min_share, repair_order, FluidLink};

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// One random mutation of the demand population (arrival / exit /
/// idle toggle / rate change), mirroring what a streaming tick does.
fn mutate(demands: &mut Vec<f64>, max_demand: f64, rng: &mut SimRng) {
    match rng.below(4) {
        0 => demands.push(rng.uniform(0.0, max_demand)),
        1 if !demands.is_empty() => {
            let i = rng.below(demands.len() as u64) as usize;
            demands.swap_remove(i);
        }
        2 if !demands.is_empty() => {
            let i = rng.below(demands.len() as u64) as usize;
            // Duty-cycle toggle: idle sessions ask for nothing.
            demands[i] = if demands[i] == 0.0 {
                rng.uniform(0.0, max_demand)
            } else {
                0.0
            };
        }
        _ if !demands.is_empty() => {
            let i = rng.below(demands.len() as u64) as usize;
            demands[i] = rng.uniform(0.0, max_demand);
        }
        _ => demands.push(rng.uniform(0.0, max_demand)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scratch-buffer allocator returns bit-identical shares to the
    /// reference implementation at every step of a random
    /// arrival/exit/toggle sequence, while reusing its buffers.
    #[test]
    fn allocate_into_bit_identical_to_reference(seed in 0u64..1_000_000, steps in 1usize..50) {
        let mut rng = SimRng::new(seed);
        let capacity = rng.uniform(10.0, 300.0);
        let max_demand = rng.uniform(1.0, 40.0);
        let mut link = FluidLink::new(capacity, 0.02, 0.05);
        let mut demands: Vec<f64> = Vec::new();
        let mut out = Vec::new();
        for _ in 0..steps {
            mutate(&mut demands, max_demand, &mut rng);
            link.allocate_into(&demands, 1.0, &mut out);
            let reference = max_min_share(&demands, capacity);
            prop_assert_eq!(bits(&out), bits(&reference), "demands {:?}", demands);
        }
    }

    /// Water-filling invariants: capacity conservation, per-session
    /// demand caps, non-negativity, and full service when uncongested.
    #[test]
    fn water_filling_invariants(seed in 0u64..1_000_000, n in 0usize..60) {
        let mut rng = SimRng::new(seed);
        let capacity = rng.uniform(10.0, 300.0);
        let demands: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 30.0)).collect();
        let shares = max_min_share(&demands, capacity);
        prop_assert_eq!(shares.len(), demands.len());
        let served: f64 = shares.iter().sum();
        let total: f64 = demands.iter().sum();
        prop_assert!(served <= capacity + 1e-9, "served {served} > capacity {capacity}");
        for (s, d) in shares.iter().zip(&demands) {
            prop_assert!(*s >= 0.0, "negative share {s}");
            prop_assert!(*s <= *d + 1e-12, "share {s} above demand {d}");
        }
        if total <= capacity {
            // Uncongested: everyone gets exactly their demand.
            prop_assert_eq!(bits(&shares), bits(&demands));
        } else {
            // Congested: the link is fully utilized.
            prop_assert!((served - capacity).abs() < 1e-6 * capacity.max(1.0),
                "congested but served {served} != capacity {capacity}");
        }
    }

    /// `repair_order` restores the sorted-permutation invariant from any
    /// carried-over permutation, and is a no-op on an already-sorted one.
    #[test]
    fn repair_order_maintains_sorted_permutation(seed in 0u64..1_000_000, steps in 1usize..40) {
        let mut rng = SimRng::new(seed);
        let mut demands: Vec<f64> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        for _ in 0..steps {
            // Arrivals/value churn; keep the permutation in sync the way
            // a caller would (append on arrival, rebuild handled by
            // repair_order on length mismatch).
            mutate(&mut demands, 25.0, &mut rng);
            repair_order(&mut order, &demands);
            let n = demands.len();
            prop_assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &i in &order {
                prop_assert!(i < n && !seen[i], "not a permutation: {:?}", order);
                seen[i] = true;
            }
            for w in order.windows(2) {
                prop_assert!(demands[w[0]] <= demands[w[1]],
                    "not sorted: {:?} over {:?}", order, demands);
            }
            let again = order.clone();
            repair_order(&mut order, &demands);
            prop_assert_eq!(&order, &again, "repair of sorted order must be stable");
        }
    }
}
