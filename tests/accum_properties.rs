//! Property-based tests for the streaming accumulators behind the fleet
//! aggregation layer: mergeable Welford cells, one-pass (clustered) OLS,
//! and the bounded quantile sketch.
//!
//! The core contract is that `merge` is associative and order-insensitive
//! up to floating-point noise: folding a dataset through any partition
//! into chunks, merged in any order, must agree with the batch estimator
//! to ≤1e-9 relative error.

use dessim::rng::SimRng;
use expstats::ols::{DesignBuilder, Ols};
use expstats::quantiles::quantile_sorted;
use expstats::{mean, variance, ClusterOlsAccum, CovEstimator, OlsAccum, WelfordCell};
use proptest::prelude::*;
use unbiased::quantiles::QuantileSketch;

const TOL: f64 = 1e-9;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1e-300)
}

/// Split `xs` into chunks at pseudo-random cut points derived from
/// `seed`, then merge the per-chunk accumulators in a pseudo-random
/// order (fold direction alternates so both `a.merge(b)` orderings and
/// associations get exercised).
fn partition(n: usize, seed: u64) -> Vec<std::ops::Range<usize>> {
    let mut rng = SimRng::new(seed);
    let mut cuts = vec![0, n];
    for _ in 0..(n / 3).min(7) {
        cuts.push((rng.uniform01() * n as f64) as usize);
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = SimRng::new(seed ^ 0xD1B5);
    for i in (1..items.len()).rev() {
        let j = (rng.uniform01() * (i + 1) as f64) as usize;
        items.swap(i, j.min(i));
    }
    items
}

fn lognormal_sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.lognormal(1.0, 0.8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Welford cells merged over an arbitrary partition (in shuffled
    /// order) agree with the batch mean/variance.
    #[test]
    fn welford_partition_merge_matches_batch(seed in 0u64..10_000, n in 4usize..200) {
        let xs = lognormal_sample(n, seed);
        let cells: Vec<WelfordCell> = partition(n, seed ^ 0xA5)
            .into_iter()
            .map(|r| {
                let mut c = WelfordCell::new();
                xs[r].iter().for_each(|&v| c.push(v));
                c
            })
            .collect();
        let mut merged = WelfordCell::new();
        for c in shuffled(cells, seed) {
            merged.merge(&c);
        }
        prop_assert_eq!(merged.n as usize, n);
        prop_assert!(rel_close(merged.mean, mean(&xs)));
        prop_assert!(rel_close(merged.variance(), variance(&xs)));
    }

    /// One-pass OLS over a random partition agrees with the batch QR-free
    /// `Ols::fit` on coefficients and spherical standard errors.
    #[test]
    fn ols_accum_partition_merge_matches_batch(seed in 0u64..10_000, n in 12usize..150) {
        let mut rng = SimRng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 0.7 * x + rng.normal(0.0, 0.5)).collect();

        let accums: Vec<OlsAccum> = partition(n, seed ^ 0x77)
            .into_iter()
            .map(|r| {
                let mut a = OlsAccum::new(2);
                for i in r {
                    a.push(&[1.0, xs[i]], ys[i]);
                }
                a
            })
            .collect();
        let mut merged = OlsAccum::new(2);
        for a in shuffled(accums, seed) {
            merged.merge(&a);
        }
        let streaming = merged.solve().unwrap();

        let design = DesignBuilder::new()
            .intercept(n).unwrap()
            .column("x", &xs).unwrap()
            .build().unwrap();
        let batch = Ols::fit(design, &ys).unwrap();
        let batch_se = batch.std_errors(CovEstimator::Classic).unwrap();
        let stream_se = streaming.std_errors();
        for j in 0..2 {
            prop_assert!(rel_close(streaming.coef[j], batch.coef[j]),
                "coef[{}]: {} vs {}", j, streaming.coef[j], batch.coef[j]);
            prop_assert!(rel_close(stream_se[j], batch_se[j]),
                "se[{}]: {} vs {}", j, stream_se[j], batch_se[j]);
        }
    }

    /// Clustered OLS accumulators merged over a random partition agree
    /// with the batch CRV1 standard errors, regardless of how cluster
    /// members are scattered across chunks.
    #[test]
    fn cluster_ols_partition_merge_matches_batch(seed in 0u64..10_000, g in 3usize..12) {
        let mut rng = SimRng::new(seed);
        let per = 6 + (seed % 5) as usize;
        let n = g * per;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut clusters = Vec::with_capacity(n);
        for c in 0..g {
            let shock = rng.normal(0.0, 1.0);
            for _ in 0..per {
                let x = rng.uniform(-2.0, 2.0);
                xs.push(x);
                ys.push(1.0 + 0.5 * x + shock + rng.normal(0.0, 0.3));
                clusters.push(c);
            }
        }

        let accums: Vec<ClusterOlsAccum> = partition(n, seed ^ 0x3C)
            .into_iter()
            .map(|r| {
                let mut a = ClusterOlsAccum::new(2);
                for i in r {
                    a.push(clusters[i], &[1.0, xs[i]], ys[i]);
                }
                a
            })
            .collect();
        let mut merged = ClusterOlsAccum::new(2);
        for a in shuffled(accums, seed) {
            merged.merge(&a);
        }
        let streaming = merged.fit().unwrap();

        let design = DesignBuilder::new()
            .intercept(n).unwrap()
            .column("x", &xs).unwrap()
            .build().unwrap();
        let batch = Ols::fit(design, &ys).unwrap();
        let batch_se = batch.std_errors_clustered(&clusters).unwrap();
        prop_assert_eq!(streaming.g, g);
        for (j, &se) in batch_se.iter().enumerate() {
            prop_assert!(rel_close(streaming.coef[j], batch.coef[j]),
                "coef[{}]: {} vs {}", j, streaming.coef[j], batch.coef[j]);
            prop_assert!(rel_close(streaming.std_errors[j], se),
                "crv1 se[{}]: {} vs {}", j, streaming.std_errors[j], se);
        }
    }

    /// A sketch with capacity ≥ n is exact: any partition/merge order
    /// reproduces `quantile_sorted` bit-for-bit at every probed q.
    #[test]
    fn sketch_exact_when_capacity_suffices(seed in 0u64..10_000, n in 1usize..300) {
        let xs = lognormal_sample(n, seed);
        let sketches: Vec<QuantileSketch> = partition(n, seed ^ 0x9E)
            .into_iter()
            .map(|r| {
                let mut s = QuantileSketch::new(512);
                for i in r {
                    s.insert(i as u64, xs[i]);
                }
                s
            })
            .collect();
        let mut merged = QuantileSketch::new(512);
        for s in shuffled(sketches, seed) {
            merged.merge(&s);
        }
        prop_assert!(merged.is_exact());
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.quantile(q).unwrap().to_bits(),
                quantile_sorted(&sorted, q).to_bits()
            );
        }
    }

    /// A bounded sketch (cap ≪ n) lands q50/q99 close to the exact
    /// lognormal sample quantiles: the estimate must fall inside a
    /// slightly widened band of nearby exact quantiles.
    #[test]
    fn sketch_tracks_lognormal_quantiles(seed in 0u64..2_000) {
        let n = 4000;
        let xs = lognormal_sample(n, seed);
        let mut sketch = QuantileSketch::new(1024);
        for (i, &v) in xs.iter().enumerate() {
            sketch.insert(i as u64, v);
        }
        prop_assert!(!sketch.is_exact());
        prop_assert_eq!(sketch.total(), n as u64);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        // A cap-1024 uniform subsample of n=4000 estimates the rank of
        // q within a few percent; check the estimate sits between
        // exact quantiles a rank-band away.
        for (q, band) in [(0.5, 0.06), (0.99, 0.009)] {
            let est = sketch.quantile(q).unwrap();
            let lo = quantile_sorted(&sorted, (q - band).max(0.0));
            let hi = quantile_sorted(&sorted, (q + band).min(1.0));
            prop_assert!(
                est >= lo && est <= hi,
                "q{}: estimate {} outside exact band [{}, {}]", q, est, lo, hi
            );
        }
    }
}
