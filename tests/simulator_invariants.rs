//! Property-based invariants on the simulators.

use dessim::{EventQueue, SimTime};
use proptest::prelude::*;
use streamsim::link::max_min_share;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Event queues always pop in non-decreasing time order.
    #[test]
    fn event_queue_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Max-min fairness: never exceeds capacity, never exceeds demand,
    /// and saturates the link whenever total demand does.
    #[test]
    fn max_min_invariants(
        demands in prop::collection::vec(0.0f64..100.0, 0..40),
        capacity in 1.0f64..500.0,
    ) {
        let shares = max_min_share(&demands, capacity);
        let total_share: f64 = shares.iter().sum();
        let total_demand: f64 = demands.iter().sum();
        prop_assert!(total_share <= capacity + 1e-6);
        for (s, d) in shares.iter().zip(&demands) {
            prop_assert!(*s <= d + 1e-9);
            prop_assert!(*s >= -1e-12);
        }
        if total_demand >= capacity {
            prop_assert!((total_share - capacity).abs() < 1e-6);
        } else {
            prop_assert!((total_share - total_demand).abs() < 1e-6);
        }
    }
}
