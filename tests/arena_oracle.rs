//! The struct-of-arrays client pass must be **bit-identical** to the
//! retained scalar reference: driving a `ClientArena` and a scalar
//! client population through the same random arrival/allocation/exit
//! sequence must produce identical session records, demand columns and
//! completion times — every float compared by bit pattern. This is the
//! streamsim analogue of the allocator oracle in
//! `tests/allocator_properties.rs`: the production tick loop
//! (`LinkSim`) runs the arena, so any divergence here is a correctness
//! bug in the SoA restructuring, not a modeling change.
//!
//! The oracle mirrors the arena's slot model with `Vec<Option<Client>>`
//! — finished sessions become `None` tombstones — so the production
//! *deferred* compaction path (tombstones persisting across ticks,
//! `needs_compaction` threshold, `compact_stale` with index remapping)
//! is exercised against the reference, not just the eager per-tick
//! `compact` convenience.

use dessim::SimRng;
use proptest::prelude::*;
use streamsim::abr::Ladder;
use streamsim::client::Client;
use streamsim::link::max_min_share;
use streamsim::session::{LinkId, SessionRecord};
use streamsim::ClientArena;
use streamsim::StreamConfig;

/// Compare every field of two session records bitwise (floats via
/// `to_bits`, NaN-safe).
fn assert_records_identical(a: &SessionRecord, b: &SessionRecord) {
    assert_eq!(a.link, b.link);
    assert_eq!(a.day, b.day);
    assert_eq!(a.hour, b.hour);
    assert_eq!(a.weekend, b.weekend);
    assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
    assert_eq!(a.treated, b.treated);
    assert_eq!(a.throughput_bps.to_bits(), b.throughput_bps.to_bits());
    assert_eq!(a.min_rtt_s.to_bits(), b.min_rtt_s.to_bits());
    assert_eq!(a.play_delay_s.to_bits(), b.play_delay_s.to_bits());
    assert_eq!(a.bitrate_bps.to_bits(), b.bitrate_bps.to_bits());
    assert_eq!(a.quality.to_bits(), b.quality.to_bits());
    assert_eq!(a.rebuffer_count, b.rebuffer_count);
    assert_eq!(a.rebuffered, b.rebuffered);
    assert_eq!(a.cancelled, b.cancelled);
    assert_eq!(a.bytes.to_bits(), b.bytes.to_bits());
    assert_eq!(a.retx_bytes.to_bits(), b.retx_bytes.to_bits());
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
}

/// Drive the arena and the scalar oracle through `ticks` ticks of a
/// randomized world: Poisson-ish arrivals with random access lines and
/// watch targets (so sessions exit at staggered times), shared max–min
/// shares, and occasional loss/RTT perturbations.
///
/// `active_only` exercises the production worklist contract (only the
/// sessions with positive demand are handed to the download pass, as
/// `LinkSim` does); otherwise every slot is listed — including
/// tombstones, which the contract allows — and must be equivalent.
/// `eager_compact` switches between the production deferred compaction
/// (`needs_compaction`/`compact_stale`, the default) and the eager
/// per-tick `compact` convenience API.
fn run_oracle(seed: u64, ticks: usize, arrival_prob: f64, active_only: bool, eager_compact: bool) {
    let cfg = StreamConfig {
        // Short sessions and a small startup buffer make exits and
        // phase churn frequent within a short run.
        mean_watch_s: 120.0,
        mean_patience_s: 10.0,
        ..Default::default()
    };
    let ladder = Ladder::new(cfg.ladder_bps.clone());
    let mut world_rng = SimRng::new(seed);

    // Slot-aligned with the arena: finished sessions become `None` and
    // stay in place until a (deferred) compaction drops them.
    let mut oracle: Vec<Option<Client>> = Vec::new();
    let mut arena = ClientArena::new();
    let mut arena_records: Vec<SessionRecord> = Vec::new();
    let mut finished: Vec<bool> = Vec::new();
    let mut remap: Vec<usize> = Vec::new();
    let mut compactions = 0usize;

    let capacity = world_rng.uniform(5e6, 80e6);
    let mut now = 0.0;
    let dt = 1.0;
    for _ in 0..ticks {
        // Arrivals: identical clients enter both populations.
        if world_rng.bernoulli(arrival_prob) {
            let access = world_rng.uniform(1e6, 20e6);
            let child_seed = world_rng.next_u64();
            let client = Client::new(
                &StreamConfig {
                    access_median_bps: access,
                    access_sigma: 0.3,
                    ..cfg.clone()
                },
                &ladder,
                if world_rng.bernoulli(0.5) {
                    LinkId::One
                } else {
                    LinkId::Two
                },
                0,
                oracle.len() % 24,
                world_rng.bernoulli(0.3),
                now,
                world_rng.bernoulli(0.4),
                capacity / (oracle.len() + 1) as f64,
                SimRng::new(child_seed),
            );
            arena.push(&cfg, client.clone());
            oracle.push(Some(client));
        }

        // Shared link state for the tick: allocation from the *scalar*
        // demands (proven equal to the arena's each tick below, with
        // tombstones demanding zero), plus perturbed RTT/loss.
        let demands: Vec<f64> = oracle
            .iter()
            .map(|slot| slot.as_ref().map_or(0.0, |c| c.demand(&cfg).rate_bps))
            .collect();
        for (d, a) in demands.iter().zip(arena.demands()) {
            assert_eq!(d.to_bits(), a.to_bits(), "demand columns diverged");
        }
        let shares = max_min_share(&demands, capacity);
        let rtt = 0.02 + world_rng.uniform(0.0, 0.05);
        let loss = if world_rng.bernoulli(0.2) {
            world_rng.uniform(0.0, 0.2)
        } else {
            0.0
        };
        now += dt;

        // Step the scalar oracle client by client, in slot order.
        let mut oracle_records: Vec<SessionRecord> = Vec::new();
        let mut oracle_finished: Vec<bool> = vec![false; oracle.len()];
        for (i, slot) in oracle.iter_mut().enumerate() {
            if let Some(client) = slot {
                if let Some(rec) = client.step(&cfg, &ladder, shares[i], rtt, loss, now, dt) {
                    oracle_records.push(rec);
                    oracle_finished[i] = true;
                    *slot = None;
                }
            }
        }

        // Step the arena over the same shares.
        let downloaders: Vec<usize> = if active_only {
            (0..demands.len()).filter(|&i| demands[i] > 0.0).collect()
        } else {
            (0..demands.len()).collect()
        };
        let before = arena_records.len();
        let any = arena.step_all(
            &cfg,
            &ladder,
            &shares,
            &downloaders,
            rtt,
            loss,
            now,
            dt,
            &mut arena_records,
            &mut finished,
        );

        // Identical completions, identical records, in the same order.
        assert_eq!(finished, oracle_finished, "completion flags diverged");
        assert_eq!(any, !oracle_records.is_empty());
        let new_records = &arena_records[before..];
        assert_eq!(new_records.len(), oracle_records.len());
        for (a, b) in new_records.iter().zip(&oracle_records) {
            assert_records_identical(a, b);
        }

        // Compact both populations the way the production loop does:
        // tombstones persist until the arena says a compaction pays.
        if eager_compact {
            if any {
                arena.compact(&finished);
                oracle.retain(|slot| slot.is_some());
                compactions += 1;
            }
        } else if arena.needs_compaction() {
            arena.compact_stale(&mut remap);
            // The remap must send live slots to their retained position
            // and flag dead ones as gone.
            let mut next = 0usize;
            for (old, slot) in oracle.iter().enumerate() {
                if slot.is_some() {
                    assert_eq!(remap[old], next, "remap diverged at slot {old}");
                    next += 1;
                } else {
                    assert_eq!(remap[old], usize::MAX, "dead slot {old} remapped");
                }
            }
            oracle.retain(|slot| slot.is_some());
            compactions += 1;
        }
        assert_eq!(arena.len(), oracle.len());
        assert_eq!(
            arena.live_sessions(),
            oracle.iter().filter(|s| s.is_some()).count()
        );
    }
    // The deferred path must actually have deferred *and* compacted at
    // least once on the longer runs, or the test is vacuous.
    if !eager_compact && ticks >= 3_000 {
        assert!(compactions > 0, "deferred compaction never triggered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized arrival/exit sequences: the arena's records and
    /// demand stream are bit-identical to the scalar reference, with
    /// the production (active-only) worklist and deferred compaction.
    #[test]
    fn arena_bit_identical_to_scalar_oracle(seed in 0u64..1_000_000) {
        run_oracle(seed, 600, 0.25, true, false);
    }

    /// Denser worlds (more arrivals, more concurrent sessions) keep the
    /// equivalence — exercises multiple simultaneous exits per tick —
    /// under the conservative all-slots worklist and the eager
    /// `compact` convenience API.
    #[test]
    fn arena_oracle_dense_population(seed in 0u64..1_000_000) {
        run_oracle(seed, 300, 0.8, false, true);
    }
}

/// Long single run as a plain test (catches slow divergence that short
/// proptest cases might miss, e.g. accumulator drift) — long enough
/// that the deferred-compaction threshold fires repeatedly.
#[test]
fn arena_oracle_long_run_with_deferred_compaction() {
    run_oracle(0xA5A5, 5_000, 0.15, true, false);
}
