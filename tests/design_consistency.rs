//! Integration: alternate designs (switchback, event study) agree with
//! the paired-link TTE on strong effects, per §5.3.

use causal::assignment::SwitchbackPlan;
use streamsim::session::Metric;
use streamsim::StreamConfig;
use unbiased::designs::{
    event_study_emulation, paired_link_effects, switchback_emulation, PairedLinkDesign,
};

#[test]
fn designs_agree_on_the_bitrate_effect() {
    let cfg = StreamConfig {
        days: 5,
        capacity_bps: 200e6,
        peak_arrivals_per_s: 0.048,
        ..Default::default()
    };
    let out = PairedLinkDesign::paper(cfg, 33).run();
    let paired = paired_link_effects(&out.data, Metric::Bitrate).unwrap().tte;
    let plan = SwitchbackPlan::alternating(5, true);
    let sw = switchback_emulation(&out.data, &plan, Metric::Bitrate).unwrap();
    let ev = event_study_emulation(&out.data, 2, Metric::Bitrate).unwrap();
    for (name, est) in [("switchback", &sw), ("event study", &ev)] {
        assert!(
            (est.relative - paired.relative).abs() < 0.12,
            "{name} {:+.3} vs paired {:+.3}",
            est.relative,
            paired.relative
        );
        assert!(
            est.relative < -0.1,
            "{name} must detect capping: {:+.3}",
            est.relative
        );
    }
}
