//! Determinism properties: the same seed and config must reproduce
//! bit-identical results across the whole stack (the parallel sweep
//! runner and every A/B-vs-A/A comparison depend on this), and
//! different seeds must actually change the draws.

use dessim::{EventQueue, SimRng, SimTime};
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use netsim::run_dumbbell;
use proptest::prelude::*;
use streamsim::scenario::AllocationSchedule;
use streamsim::sim::PairedSim;
use streamsim::StreamConfig;

fn tiny_dumbbell(seed: u64) -> DumbbellConfig {
    DumbbellConfig {
        bottleneck_bps: 20e6,
        base_rtt: dessim::SimDuration::from_millis(20),
        apps: vec![
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Cubic),
        ],
        duration: dessim::SimDuration::from_secs(3),
        warmup: dessim::SimDuration::from_secs(1),
        seed,
        ..Default::default()
    }
}

fn dumbbell_fingerprint(seed: u64) -> Vec<u64> {
    let res = run_dumbbell(&tiny_dumbbell(seed)).unwrap();
    let mut bits = vec![res.events];
    for f in &res.flows {
        bits.push(f.throughput_bps.to_bits());
    }
    for a in &res.apps {
        bits.push(a.throughput_bps.to_bits());
        bits.push(a.retx_fraction.to_bits());
    }
    bits
}

fn tiny_stream() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 100e6,
        peak_arrivals_per_s: 0.02,
        ..Default::default()
    }
}

fn paired_fingerprint(seed: u64) -> Vec<u64> {
    let run = PairedSim::with_paper_biases(
        tiny_stream(),
        [
            AllocationSchedule::Constant(0.95),
            AllocationSchedule::Constant(0.05),
        ],
        seed,
    )
    .run();
    let mut bits = vec![run.sessions.len() as u64];
    for s in &run.sessions {
        bits.push(s.throughput_bps.to_bits());
        bits.push(s.bitrate_bps.to_bits());
        bits.push(s.arrival_s.to_bits());
        bits.push(s.treated as u64);
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// dessim: replaying the same seeded (time, payload) pushes yields the
    /// same pop sequence — including tie-breaks among equal timestamps.
    #[test]
    fn event_queue_pop_order_deterministic(seed in 0u64..1000, n in 1usize..300) {
        let mut draws = SimRng::new(seed);
        // Coarse time grid so ties are common.
        let events: Vec<(u64, usize)> =
            (0..n).map(|i| (draws.below(32) * 1000, i)).collect();
        let pop_all = || {
            let mut q = EventQueue::new();
            for &(t, p) in &events {
                q.push(SimTime::from_nanos(t), p);
            }
            let mut out = Vec::new();
            while let Some((t, p)) = q.pop() {
                out.push((t, p));
            }
            out
        };
        let a = pop_all();
        let b = pop_all();
        prop_assert_eq!(a, b);
    }

    /// dessim: RNG streams replay bit-identically per seed and diverge
    /// across seeds.
    #[test]
    fn sim_rng_streams_replay(seed in 0u64..100_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut c = SimRng::new(seed.wrapping_add(1));
        let mut any_diff = false;
        for _ in 0..256 {
            let x = a.next_u64();
            prop_assert_eq!(x, b.next_u64());
            any_diff |= x != c.next_u64();
        }
        prop_assert!(any_diff, "adjacent seeds produced identical streams");
    }
}

proptest! {
    // The packet/fluid simulations are expensive; a few cases suffice.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// netsim: run_dumbbell is bit-identical per seed, different across
    /// seeds.
    #[test]
    fn dumbbell_metrics_bit_identical_per_seed(seed in 0u64..1_000_000) {
        let a = dumbbell_fingerprint(seed);
        let b = dumbbell_fingerprint(seed);
        prop_assert_eq!(&a, &b);
        let other = dumbbell_fingerprint(seed.wrapping_add(1));
        prop_assert_ne!(&a, &other);
    }

    /// streamsim: PairedSim session records are bit-identical per seed,
    /// different across seeds.
    #[test]
    fn paired_sim_bit_identical_per_seed(seed in 0u64..1_000_000) {
        let a = paired_fingerprint(seed);
        let b = paired_fingerprint(seed);
        prop_assert_eq!(&a, &b);
        let other = paired_fingerprint(seed.wrapping_add(1));
        prop_assert_ne!(&a, &other);
    }
}
