//! The hybrid tick/event engine must be **bit-identical** to the tick
//! loop on randomized worlds: for any configuration — light enough to
//! spend whole days in guaranteed decoupled spans, or congested enough
//! to force coupled ticks, optimistic rollbacks and prefix salvage —
//! both backends must emit identical session records, float for float
//! by bit pattern, and hourly statistics within the documented ≤1e-9
//! relative tolerance (the spans re-associate per-tick sums).
//!
//! This is the engine analogue of `tests/arena_oracle.rs`: there the
//! SoA arena is checked against a scalar client population; here the
//! whole event-driven driver (`EngineBackend::Event`) is checked
//! against the production tick loop it replaces ticks of. Any
//! divergence is a correctness bug in the span machinery (arrival
//! folding, clone-pricing, undo/rollback, record reordering), never a
//! modeling change.

use proptest::prelude::*;
use streamsim::engine::EngineBackend;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, SessionRecord};
use streamsim::sim::LinkSim;
use streamsim::StreamConfig;

/// Compare every field of two session records bitwise (floats via
/// `to_bits`, NaN-safe) — same discipline as the arena oracle.
fn assert_records_identical(i: usize, a: &SessionRecord, b: &SessionRecord) {
    assert_eq!(a.link, b.link, "record {i} link");
    assert_eq!(a.day, b.day, "record {i} day");
    assert_eq!(a.hour, b.hour, "record {i} hour");
    assert_eq!(a.weekend, b.weekend, "record {i} weekend");
    assert_eq!(a.treated, b.treated, "record {i} treated");
    assert_eq!(
        a.arrival_s.to_bits(),
        b.arrival_s.to_bits(),
        "record {i} arrival"
    );
    assert_eq!(
        a.throughput_bps.to_bits(),
        b.throughput_bps.to_bits(),
        "record {i} throughput: {} vs {}",
        a.throughput_bps,
        b.throughput_bps
    );
    assert_eq!(
        a.min_rtt_s.to_bits(),
        b.min_rtt_s.to_bits(),
        "record {i} min_rtt: {} vs {}",
        a.min_rtt_s,
        b.min_rtt_s
    );
    assert_eq!(
        a.play_delay_s.to_bits(),
        b.play_delay_s.to_bits(),
        "record {i} play_delay"
    );
    assert_eq!(
        a.bitrate_bps.to_bits(),
        b.bitrate_bps.to_bits(),
        "record {i} bitrate"
    );
    assert_eq!(
        a.quality.to_bits(),
        b.quality.to_bits(),
        "record {i} quality"
    );
    assert_eq!(a.bytes.to_bits(), b.bytes.to_bits(), "record {i} bytes");
    assert_eq!(
        a.retx_bytes.to_bits(),
        b.retx_bytes.to_bits(),
        "record {i} retx"
    );
    assert_eq!(
        a.duration_s.to_bits(),
        b.duration_s.to_bits(),
        "record {i} duration"
    );
    assert_eq!(
        a.rebuffer_count, b.rebuffer_count,
        "record {i} rebuffer_count"
    );
    assert_eq!(a.rebuffered, b.rebuffered, "record {i} rebuffered");
    assert_eq!(a.cancelled, b.cancelled, "record {i} cancelled");
    assert_eq!(a.switches, b.switches, "record {i} switches");
}

/// Run one configuration through both backends and hold the engine to
/// its exactness contract.
fn assert_backends_agree(cfg: StreamConfig, p_treat: f64, seed: u64) {
    let schedule = AllocationSchedule::Constant(p_treat);
    let (rt, ht) = LinkSim::new(cfg.clone(), LinkId::One, schedule.clone(), seed).run();
    let (re, he) = LinkSim::new(cfg, LinkId::One, schedule, seed).run_with(EngineBackend::Event);

    assert_eq!(rt.len(), re.len(), "record counts");
    for (i, (a, b)) in rt.iter().zip(&re).enumerate() {
        assert_records_identical(i, a, b);
    }

    assert_eq!(ht.len(), he.len(), "hourly window counts");
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    for (a, b) in ht.iter().zip(&he) {
        assert_eq!((a.day, a.hour), (b.day, b.hour));
        assert!(
            close(a.utilization, b.utilization),
            "util {} vs {}",
            a.utilization,
            b.utilization
        );
        assert!(close(a.rtt_s, b.rtt_s), "rtt {} vs {}", a.rtt_s, b.rtt_s);
        assert!(
            close(a.concurrent, b.concurrent),
            "conc {} vs {}",
            a.concurrent,
            b.concurrent
        );
        assert!(close(a.loss, b.loss), "loss {} vs {}", a.loss, b.loss);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized one-day worlds spanning light (all guaranteed spans)
    /// through congested (standing queues, rollbacks, prefix salvage):
    /// capacity, offered load, session length, treatment share and the
    /// seed all vary per case.
    #[test]
    fn event_engine_is_bit_identical_on_random_configs(
        capacity_mbps in 20.0f64..80.0,
        lambda in 0.002f64..0.02,
        watch_s in 300.0f64..1200.0,
        p_treat in 0.0f64..1.0,
        seed in 1u64..1_000_000,
    ) {
        let cfg = StreamConfig {
            days: 1,
            capacity_bps: capacity_mbps * 1e6,
            peak_arrivals_per_s: lambda,
            mean_watch_s: watch_s,
            ..Default::default()
        };
        assert_backends_agree(cfg, p_treat, seed);
    }
}

/// A deliberately overloaded world (offered load well past capacity for
/// hours at a stretch) — wall-to-wall coupled ticks bracketed by
/// decoupled night spans, maximizing mode transitions per simulated
/// day.
#[test]
fn event_engine_bit_identical_under_overload() {
    let cfg = StreamConfig {
        days: 1,
        capacity_bps: 30e6,
        peak_arrivals_per_s: 0.015,
        mean_watch_s: 900.0,
        ..Default::default()
    };
    assert_backends_agree(cfg, 0.5, 1303);
}

/// Multi-day run: hour and midnight (day-arm) boundaries must land the
/// span terminators exactly where the tick loop rolls its windows.
#[test]
fn event_engine_bit_identical_across_days() {
    let cfg = StreamConfig {
        days: 3,
        capacity_bps: 60e6,
        peak_arrivals_per_s: 0.004,
        mean_watch_s: 600.0,
        ..Default::default()
    };
    assert_backends_agree(cfg, 0.3, 47);
}
