//! Umbrella crate for the workspace: re-exports the public APIs so the
//! examples and integration tests can use one dependency.
//!
//! See the individual crates for documentation:
//! [`dessim`], [`netsim`], [`expstats`], [`causal`], [`streamsim`],
//! [`unbiased`].

pub use causal;
pub use dessim;
pub use expstats;
pub use netsim;
pub use streamsim;
pub use unbiased;
