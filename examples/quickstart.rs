//! Quickstart: congestion interference in three minutes.
//!
//! Builds a closed-form congested world (fair-share bandwidth splitting),
//! runs a naive A/B test, and compares its answer with the true total
//! treatment effect.
//!
//! Run with: `cargo run --example quickstart --release`

use causal::assignment::Assignment;
use causal::estimators::{arm_means, naive_ab};
use causal::exposure::{standard_grid, ExposureCurves};
use causal::potential::{FairShare, PotentialOutcomes};

fn main() {
    // 100 applications share a congested link. "Treatment" doubles an
    // application's aggressiveness (e.g. it opens a second connection).
    let model = FairShare {
        n: 100,
        capacity: 1000.0,
        weight_treated: 2.0,
        weight_control: 1.0,
    };

    // --- What an experimenter does: a 10% A/B test. -------------------
    let assignment = Assignment::bernoulli(model.n(), 0.10, 7);
    let outcomes: Vec<f64> = (0..model.n())
        .map(|i| model.outcome(i, &assignment))
        .collect();
    let est = naive_ab(&outcomes, &assignment, 0.95).expect("estimable");
    let (_, control_mean) = arm_means(&outcomes, &assignment).expect("both arms present");

    println!("naive A/B test at 10% allocation:");
    println!(
        "  treatment effect: {:+.1}% of the control mean (95% CI {:+.1}%..{:+.1}%)",
        100.0 * est.estimate / control_mean,
        100.0 * est.ci.0 / control_mean,
        100.0 * est.ci.1 / control_mean,
    );

    // --- What is actually true. ---------------------------------------
    println!("\nground truth (possible because the model is closed-form):");
    println!(
        "  total treatment effect if deployed to everyone: {:+.1}%",
        100.0 * model.true_tte() / 10.0
    );

    // --- Why: the allocation-response curves of Figure 1. -------------
    let curves = ExposureCurves::sample(&model, &standard_grid(6), 40, 1);
    println!("\nallocation-response curves (the paper's Figure 1b):");
    println!("  p      mu_T     mu_C");
    for (i, p) in curves.ps.iter().enumerate() {
        println!(
            "  {:.1}  {:>7.3}  {:>7.3}",
            p, curves.mu_t[i], curves.mu_c[i]
        );
    }
    println!(
        "\nThe A/B contrast (+100%) persists at every allocation, yet deploying\n\
         the treatment to everyone changes nothing: the treatment only\n\
         *redistributes* the congested link. This is congestion interference."
    );
}
