//! A *real* switchback experiment (§5.2): alternate 95%/5% bitrate
//! capping by day on one congested link, analyze with the hourly
//! regression, and compare with a naive within-day A/B estimate.
//!
//! Run with: `cargo run --example switchback_design --release`

use causal::assignment::SwitchbackPlan;
use streamsim::session::Metric;
use unbiased::designs::SwitchbackDesign;

fn main() {
    let cfg = streamsim::StreamConfig {
        days: 6,
        capacity_bps: 200e6,
        peak_arrivals_per_s: 0.048,
        ..Default::default()
    };
    let design = SwitchbackDesign {
        cfg,
        plan: SwitchbackPlan::alternating(6, true),
        p_hi: 0.95,
        p_lo: 0.05,
        seed: 9,
    };
    println!("switchback: 6 days, 95% capped on alternating days\n");
    for metric in [Metric::Throughput, Metric::Bitrate, Metric::MinRtt] {
        match design.run_and_estimate(metric) {
            Ok((_, est)) => println!(
                "  {:<22} TTE {:+.1}%  (95% CI {:+.1}%..{:+.1}%)",
                metric.name(),
                100.0 * est.relative,
                100.0 * est.ci95.0,
                100.0 * est.ci95.1,
            ),
            Err(e) => println!("  {:<22} not estimable: {e}", metric.name()),
        }
    }
    println!(
        "\nA switchback needs no twin link: random day-level assignment gives a\n\
         TTE estimate while still allowing spillover checks via the 5% holdout."
    );
}
