//! The paper's §3.1 lab experiment on the packet simulator: applications
//! using one vs two TCP connections over a shared dumbbell bottleneck.
//!
//! Run with: `cargo run --example lab_parallel_connections --release`

use dessim::SimDuration;
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use netsim::run_dumbbell;

fn experiment(k_treated: usize, seed: u64) -> (f64, f64) {
    let apps: Vec<AppConfig> = (0..10)
        .map(|i| AppConfig {
            connections: if i < k_treated { 2 } else { 1 },
            cc: CcKind::Reno,
            paced: false,
            pacing_ca_factor: 1.2,
        })
        .collect();
    let cfg = DumbbellConfig {
        bottleneck_bps: 100e6,
        base_rtt: SimDuration::from_millis(20),
        apps,
        duration: SimDuration::from_secs(25),
        warmup: SimDuration::from_secs(8),
        seed,
        ..Default::default()
    };
    let res = run_dumbbell(&cfg).expect("valid configuration");
    let mean = |slice: &[netsim::AppMetrics]| {
        slice.iter().map(|a| a.throughput_bps).sum::<f64>() / slice.len().max(1) as f64
    };
    (mean(&res.apps[..k_treated]), mean(&res.apps[k_treated..]))
}

fn main() {
    println!("10 applications on a 100 Mb/s dumbbell; k of them use 2 TCP connections\n");
    println!("  k   2-conn mean    1-conn mean    A/B says");
    for k in [1, 3, 5, 7, 9] {
        let (t, c) = experiment(k, 11 + k as u64);
        println!(
            " {k:2}   {:7.1} Mb/s   {:7.1} Mb/s   {:+.0}%",
            t / 1e6,
            c / 1e6,
            100.0 * (t / c - 1.0)
        );
    }
    let (_, all_one) = experiment(0, 30);
    let (all_two, _) = experiment(10, 31);
    println!("\n  all-1-conn mean: {:.1} Mb/s", all_one / 1e6);
    println!("  all-2-conn mean: {:.1} Mb/s", all_two / 1e6);
    println!(
        "  total treatment effect: {:+.0}%",
        100.0 * (all_two / all_one - 1.0)
    );
    println!("\nEvery A/B test promises ~+100%; deploying to everyone delivers ~0%.");
}
