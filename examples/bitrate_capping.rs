//! The paper's §4 experiment, end to end: a paired-link bitrate-capping
//! study on the streaming simulator, with naive A/B estimates, the
//! approximate TTE and the spillover for the headline metrics.
//!
//! Run with: `cargo run --example bitrate_capping --release`

use streamsim::session::Metric;
use unbiased::designs::{paired_link_effects, PairedLinkDesign};
use unbiased::report::render_effects_table;

fn main() {
    // A scaled-down world (3 days, ~200 Mb/s links) so the example runs
    // in seconds; the bench binaries run the full five-day version.
    let cfg = streamsim::StreamConfig {
        days: 3,
        capacity_bps: 200e6,
        peak_arrivals_per_s: 0.048,
        ..Default::default()
    };
    let design = PairedLinkDesign::paper(cfg, 42);
    let out = design.run();
    println!(
        "paired-link bitrate-capping experiment: {} sessions over 3 days\n",
        out.data.len()
    );
    let rows: Vec<_> = [
        Metric::Throughput,
        Metric::MinRtt,
        Metric::Bitrate,
        Metric::PlayDelay,
    ]
    .into_iter()
    .filter_map(|m| paired_link_effects(&out.data, m).ok())
    .collect();
    println!("{}", render_effects_table(&rows));
    println!(
        "Read it like the paper's Figure 5: within-link A/B columns miss (or\n\
         invert) what the cross-link TTE column shows, because capped and\n\
         uncapped sessions share each congested link."
    );
}
